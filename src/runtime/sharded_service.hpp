// The sharded, backpressure-aware serving fast path.
//
// MonitorService (service.hpp) funnels every stream through one ThreadPool
// with unbounded FIFO queues and a shared stream table — fine for
// benchmarks, fatal under sustained overload: memory grows without bound
// and every Observe crosses a service-wide mutex. ShardedMonitorService
// rebuilds the hot path for that regime:
//
//   producers ──ObserveBatch──► bounded MPSC queue ─► shard worker 0
//              (admission policy:  bounded MPSC queue ─► shard worker 1
//               Block / DropOldest,       ...
//               ShedBelowSeverity) bounded MPSC queue ─► shard worker N-1
//                                          │
//                     evaluators + metrics cell owned by that shard
//                                          │
//                          events ──► EventSinks (atomic snapshot)
//
// Ownership and threading:
//
//   * Stream id % shards picks the shard. Each shard owns a dedicated
//     worker thread, the IncrementalWindowEvaluators of its streams, and
//     its cell of the MetricsRegistry — nothing on the observe/score path
//     takes a lock shared between shards.
//   * The stream table and the sink list are read through atomic
//     shared_ptr snapshots: producers never contend with registration.
//   * Ingestion queues are bounded (`queue_capacity` examples per shard).
//     A full queue invokes the configured AdmissionPolicy, so overload
//     degrades by an explicit, counted policy instead of OOMing.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "core/assertion.hpp"
#include "obs/clock.hpp"
#include "obs/tracer.hpp"
#include "runtime/admission.hpp"
#include "runtime/event_sink.hpp"
#include "runtime/incremental.hpp"
#include "runtime/metrics.hpp"
#include "runtime/stream_registry.hpp"
#include "runtime/suite_bundle.hpp"

namespace omg::runtime {

/// Serves an assertion suite over many concurrent example streams through
/// per-shard worker threads fed by bounded, admission-controlled queues.
///
/// Suites are stateful (consistency assertions memoise analyses), so every
/// stream gets its own instance from the factory. Ingestion is asynchronous:
/// Observe/ObserveBatch enqueue (subject to admission) and return; call
/// Flush() to wait for quiescence. All public methods are thread-safe.
template <typename Example>
class ShardedMonitorService {
 public:
  /// One stream's private suite plus its invalidation hook (shared with
  /// MonitorService — see runtime/suite_bundle.hpp).
  using SuiteBundle = runtime::SuiteBundle<Example>;
  /// Builds one stream's SuiteBundle; called once per RegisterStream.
  using SuiteFactory = runtime::SuiteFactory<Example>;

  /// Validates `config`, spawns one worker thread per shard. `factory` is
  /// the default suite source for RegisterStream(name); it may be omitted
  /// when every stream supplies its own bundle (the serving facade's mode —
  /// heterogeneous streams cannot share one factory).
  explicit ShardedMonitorService(ShardedRuntimeConfig config,
                                 SuiteFactory factory = nullptr)
      : config_(config), factory_(std::move(factory)) {
    config_.Validate();
    if (config_.tracer != nullptr) {
      common::Check(config_.tracer->shard_lanes() >= config_.shards,
                    "tracer has fewer shard lanes than the service has "
                    "shards");
    }
    metrics_ = std::make_unique<MetricsRegistry>(config_.shards);
    shards_.reserve(config_.shards);
    for (std::size_t i = 0; i < config_.shards; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
    for (std::size_t i = 0; i < config_.shards; ++i) {
      shards_[i]->worker = std::thread([this, i] { WorkerLoop(i); });
    }
  }

  /// Drains every queue (already-admitted batches are still scored), then
  /// joins the workers.
  ~ShardedMonitorService() {
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      shard->stop = true;
      shard->ready.notify_all();
      shard->space.notify_all();
    }
    for (const auto& shard : shards_) shard->worker.join();
  }

  ShardedMonitorService(const ShardedMonitorService&) = delete;
  ShardedMonitorService& operator=(const ShardedMonitorService&) = delete;

  /// The validated configuration this service runs with.
  const ShardedRuntimeConfig& config() const { return config_; }

  /// Stream name <-> id mapping.
  const StreamRegistry& registry() const { return registry_; }

  /// Registers a stream served by the default suite factory and pins it to
  /// shard `id % shards`.
  StreamId RegisterStream(std::string name) {
    common::Check(static_cast<bool>(factory_),
                  "RegisterStream(name) needs the constructor's suite "
                  "factory; pass a bundle explicitly otherwise");
    return RegisterStream(std::move(name), factory_());
  }

  /// Registers a stream served by its own `bundle` — streams of one
  /// service may run entirely different suites (the serving facade hosts
  /// heterogeneous domains this way).
  StreamId RegisterStream(std::string name, SuiteBundle bundle) {
    // Registration is serialised end to end: id assignment and the table
    // append must be atomic together, or two concurrent registrations
    // could append out of id order.
    std::lock_guard<std::mutex> lock(registration_mutex_);
    const StreamId id = registry_.Register(std::move(name));
    metrics_->RegisterStream(id, registry_.Name(id));
    common::Check(bundle.suite != nullptr, "suite factory returned null");
    auto state = std::make_unique<StreamState>(id, registry_.Name(id),
                                               std::move(bundle), config_);
    auto table = std::make_shared<std::vector<StreamState*>>(
        streams_.load() ? *streams_.load() : std::vector<StreamState*>{});
    common::Check(table->size() == id, "stream table out of sync");
    table->push_back(state.get());
    owned_streams_.push_back(std::move(state));
    streams_.store(std::shared_ptr<const std::vector<StreamState*>>(
        std::move(table)));
    return id;
  }

  /// Fans `sink` every event from every stream. Thread-safe; events already
  /// in flight on the workers may miss a sink added concurrently.
  void AddSink(std::shared_ptr<EventSink> sink) {
    common::Check(sink != nullptr, "null sink");
    std::lock_guard<std::mutex> lock(registration_mutex_);
    auto sinks = std::make_shared<std::vector<std::shared_ptr<EventSink>>>(
        sinks_.load() ? *sinks_.load()
                      : std::vector<std::shared_ptr<EventSink>>{});
    sinks->push_back(std::move(sink));
    sinks_.store(std::shared_ptr<const std::vector<std::shared_ptr<EventSink>>>(
        std::move(sinks)));
  }

  /// Enqueues one example (convenience wrapper; prefer ObserveBatch under
  /// load — batching is where the throughput comes from). Returns false if
  /// the example was shed by the admission policy.
  bool Observe(StreamId id, Example example, double severity_hint = 0.0) {
    std::vector<Example> batch;
    batch.push_back(std::move(example));
    return ObserveBatch(id, std::move(batch), severity_hint);
  }

  /// Enqueues a batch for `id` and returns. Batches from one producer are
  /// scored in submission order (minus any the admission policy removed).
  ///
  /// `severity_hint` is the producer's estimate of how important the batch
  /// is (e.g. an upstream filter's confidence that it contains anomalies);
  /// kShedBelowSeverity sheds below-floor batches when the queue is full.
  /// Returns true when the batch was admitted, false when it was shed —
  /// kBlock and kDropOldest always admit (kBlock by waiting for space,
  /// kDropOldest by evicting queued batches).
  bool ObserveBatch(StreamId id, std::vector<Example> batch,
                    double severity_hint = 0.0) {
    if (batch.empty()) return true;
    common::Check(batch.size() <= config_.queue_capacity,
                  "batch exceeds the shard queue capacity; split it");
    StreamState* state = State(id);
    Shard& shard = *shards_[state->shard];
    const std::size_t cost = batch.size();
    std::size_t dropped_batches = 0;
    std::size_t dropped_examples = 0;
    std::size_t depth;
    {
      std::unique_lock<std::mutex> lock(shard.mutex);
      if (shard.queued + cost > config_.queue_capacity) {
        switch (config_.admission) {
          case AdmissionPolicy::kBlock:
            shard.space.wait(lock, [&] {
              return shard.stop ||
                     shard.queued + cost <= config_.queue_capacity;
            });
            break;
          case AdmissionPolicy::kDropOldest:
            while (shard.queued + cost > config_.queue_capacity &&
                   !shard.queue.empty()) {
              shard.queued -= shard.queue.front().batch.size();
              dropped_examples += shard.queue.front().batch.size();
              ++dropped_batches;
              shard.queue.pop_front();
            }
            break;
          case AdmissionPolicy::kShedBelowSeverity:
            if (severity_hint < config_.shed_floor) {
              lock.unlock();
              metrics_->RecordLoss(state->shard, 1, cost,
                                   MetricsRegistry::LossKind::kShed);
              OMG_TRACE(if (config_.tracer != nullptr)
                            config_.tracer->EmitControl(
                                obs::TraceEventKind::kAdmissionShed,
                                obs::TracePhase::kInstant, id, cost,
                                state->shard));
              return false;
            }
            // The incoming batch is important: make room by evicting
            // below-floor queued work (oldest first), then block if the
            // whole queue is important too.
            for (auto it = shard.queue.begin();
                 it != shard.queue.end() &&
                 shard.queued + cost > config_.queue_capacity;) {
              if (it->severity_hint < config_.shed_floor) {
                shard.queued -= it->batch.size();
                dropped_examples += it->batch.size();
                ++dropped_batches;
                it = shard.queue.erase(it);
              } else {
                ++it;
              }
            }
            if (shard.queued + cost > config_.queue_capacity) {
              shard.space.wait(lock, [&] {
                return shard.stop ||
                       shard.queued + cost <= config_.queue_capacity;
              });
            }
            break;
        }
      }
      shard.queue.push_back(
          {state, std::move(batch), severity_hint, obs::Clock::NowNs()});
      shard.queued += cost;
      depth = shard.queued;
      shard.ready.notify_one();
    }
    metrics_->RecordQueueDepth(state->shard, depth);
    if (dropped_batches > 0) {
      metrics_->RecordLoss(state->shard, dropped_batches, dropped_examples,
                           MetricsRegistry::LossKind::kDropped);
      OMG_TRACE(if (config_.tracer != nullptr) config_.tracer->EmitControl(
                    obs::TraceEventKind::kAdmissionDrop,
                    obs::TracePhase::kInstant, id, dropped_examples,
                    state->shard));
    }
    return true;
  }

  /// Blocks until every shard is quiescent (queue empty, worker idle), then
  /// flushes the sinks. With producers still running this waits for them to
  /// pause; under kBlock a producer blocked on admission makes progress as
  /// the workers drain, so Flush still terminates.
  void Flush() {
    OMG_TRACE(if (config_.tracer != nullptr) config_.tracer->EmitControl(
                  obs::TraceEventKind::kFlush, obs::TracePhase::kBegin));
    for (const auto& shard : shards_) {
      std::unique_lock<std::mutex> lock(shard->mutex);
      shard->idle.wait(lock,
                       [&] { return shard->queue.empty() && !shard->busy; });
    }
    if (const auto sinks = sinks_.load()) {
      for (const auto& sink : *sinks) sink->Flush();
    }
    OMG_TRACE(if (config_.tracer != nullptr) config_.tracer->EmitControl(
                  obs::TraceEventKind::kFlush, obs::TracePhase::kEnd));
  }

  /// Aggregated dashboard snapshot — per-stream aggregates plus the
  /// per-shard queue/drop counters and observe-to-flag latency histograms
  /// (does not flush; pair with Flush() for read-your-writes).
  MetricsSnapshot Metrics() const { return metrics_->Snapshot(); }

  /// The shared metrics registry, for frontends recording their own
  /// accounting (e.g. the net layer's named per-tenant counters) into the
  /// same snapshot the exporter renders.
  MetricsRegistry& metrics_registry() { return *metrics_; }

  /// Messages from ingestion tasks that threw (a throwing assertion poisons
  /// its batch, not the service).
  std::vector<std::string> Errors() const {
    std::lock_guard<std::mutex> lock(errors_mutex_);
    return errors_;
  }

 private:
  /// One registered stream: its private suite and window evaluator, owned
  /// (touched on the scoring path) by exactly one shard worker.
  struct StreamState {
    StreamState(StreamId id, std::string_view name, SuiteBundle bundle,
                const ShardedRuntimeConfig& config)
        : id(id),
          name(name),
          shard(id % config.shards),
          bundle(std::move(bundle)),
          evaluator(*this->bundle.suite,
                    {config.window, config.settle_lag,
                     this->bundle.invalidate}) {}

    StreamId id;
    std::string_view name;  // owned by the registry
    std::size_t shard;
    SuiteBundle bundle;
    IncrementalWindowEvaluator<Example> evaluator;
  };

  /// One queued ingestion batch.
  struct QueueItem {
    StreamState* state;
    std::vector<Example> batch;
    double severity_hint;
    /// obs::Clock admission timestamp (queue-wait and latency baseline).
    std::uint64_t enqueued_ns;
  };

  /// One shard: a bounded MPSC queue plus the dedicated worker draining it.
  struct Shard {
    std::mutex mutex;
    std::condition_variable ready;  ///< worker waits for work
    std::condition_variable space;  ///< kBlock producers wait for capacity
    std::condition_variable idle;   ///< Flush waits for quiescence
    std::deque<QueueItem> queue;
    std::size_t queued = 0;  ///< examples summed over `queue`
    bool busy = false;       ///< worker is scoring a popped batch
    bool stop = false;
    std::thread worker;
  };

  StreamState* State(StreamId id) {
    const auto table = streams_.load();
    common::Check(table != nullptr && id < table->size(), "unknown stream id");
    return (*table)[id];
  }

  void WorkerLoop(std::size_t shard_index) {
    Shard& shard = *shards_[shard_index];
    [[maybe_unused]] obs::Tracer* const tracer = config_.tracer.get();
    // Occupancy accounting: everything between finishing one batch and
    // dequeuing the next is idle; Score's wall time is busy. The boundary
    // timestamps double as the queue-wait measurement.
    std::uint64_t idle_since_ns = obs::Clock::NowNs();
    for (;;) {
      QueueItem item;
      std::size_t depth;
      {
        std::unique_lock<std::mutex> lock(shard.mutex);
        shard.ready.wait(lock,
                         [&] { return shard.stop || !shard.queue.empty(); });
        if (shard.queue.empty()) return;  // stop requested and queue drained
        item = std::move(shard.queue.front());
        shard.queue.pop_front();
        shard.queued -= item.batch.size();
        depth = shard.queued;
        shard.busy = true;
        shard.space.notify_all();
      }
      const std::uint64_t dequeued_ns = obs::Clock::NowNs();
      const std::uint64_t idle_ns =
          obs::Clock::ElapsedNs(idle_since_ns, dequeued_ns);
      const std::uint64_t queue_wait_ns =
          obs::Clock::ElapsedNs(item.enqueued_ns, dequeued_ns);
      metrics_->RecordQueueDepth(shard_index, depth);
      bool traced = false;
      OMG_TRACE(traced = tracer != nullptr && tracer->SampleBatch(shard_index);
                if (traced) tracer->EmitShard(
                    shard_index, obs::TraceEventKind::kBatchDequeue,
                    obs::TracePhase::kInstant, item.state->id,
                    item.batch.size(), depth));
      Score(shard_index, item, queue_wait_ns, idle_ns, traced);
      {
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.busy = false;
        if (shard.queue.empty()) shard.idle.notify_all();
      }
      idle_since_ns = obs::Clock::NowNs();
    }
  }

  /// Worker-side scoring: runs on `item.state`'s shard, exclusively.
  /// `queue_wait_ns` / `idle_ns` are the batch's occupancy deltas measured
  /// by WorkerLoop; `traced` is the sampling decision for this batch.
  void Score(std::size_t shard_index, QueueItem& item,
             std::uint64_t queue_wait_ns, std::uint64_t idle_ns,
             [[maybe_unused]] bool traced) {
    [[maybe_unused]] obs::Tracer* const tracer = config_.tracer.get();
    StreamState& state = *item.state;
    const std::size_t count = item.batch.size();
    const std::uint64_t begin_ns = obs::Clock::NowNs();
    OMG_TRACE(if (traced) tracer->EmitShard(
                  shard_index, obs::TraceEventKind::kEvaluate,
                  obs::TracePhase::kBegin, state.id, count));
    std::vector<StreamEvent> events;
    try {
      state.evaluator.ObserveBatch(
          std::move(item.batch),
          [&](std::size_t global, std::size_t a, double severity) {
            events.push_back({state.id, state.name, global,
                              state.bundle.suite->at(a).name(), severity});
          });
    } catch (const std::exception& error) {
      {
        std::lock_guard<std::mutex> lock(errors_mutex_);
        errors_.push_back(std::string(state.name) + ": " + error.what());
      }
      const std::uint64_t failed_ns = obs::Clock::NowNs();
      OMG_TRACE(if (traced) tracer->EmitShard(
                    shard_index, obs::TraceEventKind::kEvaluate,
                    obs::TracePhase::kEnd, state.id, count, 0));
      // Keep the loss accounting exact: a poisoned batch's examples must
      // land in a counter (offered == scored + shed + dropped + errored).
      metrics_->RecordError(shard_index, 1, count, queue_wait_ns,
                            obs::Clock::ElapsedNs(begin_ns, failed_ns),
                            idle_ns);
      return;
    }
    if (const auto sinks = sinks_.load()) {
      for (const auto& sink : *sinks) {
        for (const StreamEvent& event : events) sink->Consume(event);
      }
    }
    const std::uint64_t done_ns = obs::Clock::NowNs();
    OMG_TRACE(if (traced) tracer->EmitShard(
                  shard_index, obs::TraceEventKind::kEvaluate,
                  obs::TracePhase::kEnd, state.id, count, events.size()));
    const double latency = obs::Clock::ToSeconds(
        obs::Clock::ElapsedNs(item.enqueued_ns, done_ns));
    metrics_->RecordScoredBatch(state.id, shard_index, count, events, latency,
                                queue_wait_ns,
                                obs::Clock::ElapsedNs(begin_ns, done_ns),
                                idle_ns);
  }

  ShardedRuntimeConfig config_;
  SuiteFactory factory_;
  StreamRegistry registry_;
  std::unique_ptr<MetricsRegistry> metrics_;

  /// Guards registration (stream table + sink list writers); readers go
  /// through the atomic snapshots below and never take it.
  std::mutex registration_mutex_;
  std::vector<std::unique_ptr<StreamState>> owned_streams_;
  std::atomic<std::shared_ptr<const std::vector<StreamState*>>> streams_;
  std::atomic<std::shared_ptr<const std::vector<std::shared_ptr<EventSink>>>>
      sinks_;

  mutable std::mutex errors_mutex_;
  std::vector<std::string> errors_;

  // Declared last: workers joined (in ~ShardedMonitorService) before the
  // state above dies.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace omg::runtime
