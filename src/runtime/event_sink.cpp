#include "runtime/event_sink.hpp"

#include <array>
#include <cstdio>
#include <ostream>

namespace omg::runtime {

void CountingSink::Consume(const StreamEvent& event) {
  MutexLock lock(mutex_);
  ++count_;
  if (event.severity > max_severity_) max_severity_ = event.severity;
  const auto it = by_assertion_.find(event.assertion);
  if (it != by_assertion_.end()) {
    ++it->second;
  } else {
    by_assertion_.emplace(std::string(event.assertion), 1);
  }
}

std::map<std::string, std::size_t, std::less<>>
CountingSink::counts_by_assertion() const {
  MutexLock lock(mutex_);
  return by_assertion_;
}

std::size_t CountingSink::count() const {
  MutexLock lock(mutex_);
  return count_;
}

double CountingSink::max_severity() const {
  MutexLock lock(mutex_);
  return max_severity_;
}

LoggingSink::LoggingSink(std::ostream& out) : out_(out) {}

void LoggingSink::Consume(const StreamEvent& event) {
  MutexLock lock(mutex_);
  out_ << "[" << event.stream << " #" << event.example_index << "] "
       << event.assertion << " severity " << event.severity << "\n";
}

void LoggingSink::Flush() {
  MutexLock lock(mutex_);
  out_.flush();
}

JsonLinesSink::JsonLinesSink(std::ostream& out) : out_(out) {}

void JsonLinesSink::Consume(const StreamEvent& event) {
  // %.17g round-trips doubles; JSON has no infinities but severities are
  // checked finite at the assertion layer.
  std::array<char, 32> severity{};
  std::snprintf(severity.data(), severity.size(), "%.17g", event.severity);
  MutexLock lock(mutex_);
  out_ << "{\"stream\":\"" << JsonEscape(event.stream)
       << "\",\"example\":" << event.example_index << ",\"assertion\":\""
       << JsonEscape(event.assertion) << "\",\"severity\":" << severity.data()
       << "}\n";
}

void JsonLinesSink::Flush() {
  MutexLock lock(mutex_);
  out_.flush();
}

void CollectingSink::Consume(const StreamEvent& event) {
  MutexLock lock(mutex_);
  events_.push_back({event.stream_id, std::string(event.stream),
                     event.example_index, std::string(event.assertion),
                     event.severity});
}

std::vector<CollectingSink::OwnedEvent> CollectingSink::Events() const {
  MutexLock lock(mutex_);
  return events_;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buf{};
          std::snprintf(buf.data(), buf.size(), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf.data();
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace omg::runtime
