// The per-stream suite handle shared by both serving services.
//
// Suites are stateful (consistency assertions memoise analyses), so every
// registered stream gets its own instance from a factory; the bundle pairs
// the suite with the invalidation hook its unbounded assertions need. Both
// MonitorService and ShardedMonitorService alias these types, so factories
// written for one service plug into the other unchanged.
//
// A bundle may additionally carry a StreamScorer factory: the scorer owns
// the stream's window evaluation, and a custom one can evaluate in a
// different representation than the service's Example type. The serving
// facade uses this to run type-erased streams on *typed* evaluators — the
// holder's payload is moved straight into a typed window and every
// assertion scores typed spans, so erasure stays off the per-pass scoring
// path. Without a factory the service builds the default scorer, which
// drives an IncrementalWindowEvaluator<Example> over `suite` exactly as the
// services always did.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "core/assertion.hpp"
#include "core/incremental.hpp"

namespace omg::runtime {

/// Window geometry handed to a StreamScorer factory (the slice of
/// ShardedRuntimeConfig a per-stream evaluator needs).
struct StreamScorerParams {
  std::size_t window = 64;
  std::size_t settle_lag = 8;
};

/// One stream's window-evaluation engine: consumes batches, emits
/// `(global_index, assertion_index, severity)` firings in stream order.
///
/// Not thread-safe: the service guarantees at most one worker drives a
/// given scorer at a time (with work stealing the worker may change between
/// batches, but never concurrently — the claimed-stream protocol in
/// ShardedMonitorService serialises access).
template <typename Example>
class StreamScorer {
 public:
  /// Firing callback; assertion_index refers to the bundle suite's order.
  using EmitFn = std::function<void(std::size_t global, std::size_t assertion,
                                    double severity)>;

  virtual ~StreamScorer() = default;

  /// Scores one batch (consumed), emitting settled verdicts via `emit`.
  /// May throw; the service poisons the batch and keeps serving.
  virtual void ObserveBatch(std::vector<Example> batch, const EmitFn& emit) = 0;
};

/// The stock scorer: an IncrementalWindowEvaluator<Example> over the
/// bundle's own suite (what every stream ran before scorers existed).
template <typename Example>
class DefaultStreamScorer final : public StreamScorer<Example> {
 public:
  DefaultStreamScorer(std::shared_ptr<core::AssertionSuite<Example>> suite,
                      std::function<void()> invalidate,
                      const StreamScorerParams& params)
      : suite_(std::move(suite)),
        evaluator_(*suite_, {params.window, params.settle_lag,
                             std::move(invalidate)}) {}

  void ObserveBatch(std::vector<Example> batch,
                    const typename StreamScorer<Example>::EmitFn& emit)
      override {
    evaluator_.ObserveBatch(std::move(batch), emit);
  }

 private:
  std::shared_ptr<core::AssertionSuite<Example>> suite_;
  core::IncrementalWindowEvaluator<Example> evaluator_;
};

/// One stream's private suite plus an optional invalidation hook, invoked
/// before unbounded assertions re-evaluate the window (wire the
/// consistency analyzer's Invalidate here — see IncrementalWindowEvaluator).
template <typename Example>
struct SuiteBundle {
  /// The stream's private assertion suite (must be non-null). Even when a
  /// custom scorer evaluates elsewhere, this suite remains the source of
  /// assertion names and order for the stream's events.
  std::shared_ptr<core::AssertionSuite<Example>> suite;
  /// Optional hook run before unbounded assertions re-score the window
  /// (consumed by the default scorer; custom scorers wire their own).
  std::function<void()> invalidate;
  /// Optional scorer factory; null means the default scorer over `suite`.
  /// Emitted assertion indices must follow `suite`'s order.
  std::function<std::unique_ptr<StreamScorer<Example>>(
      const StreamScorerParams&)>
      scorer;
};

/// Builds one stream's SuiteBundle; called once per RegisterStream.
template <typename Example>
using SuiteFactory = std::function<SuiteBundle<Example>()>;

}  // namespace omg::runtime
