// The per-stream suite handle shared by both serving services.
//
// Suites are stateful (consistency assertions memoise analyses), so every
// registered stream gets its own instance from a factory; the bundle pairs
// the suite with the invalidation hook its unbounded assertions need. Both
// MonitorService and ShardedMonitorService alias these types, so factories
// written for one service plug into the other unchanged.
#pragma once

#include <functional>
#include <memory>

#include "core/assertion.hpp"

namespace omg::runtime {

/// One stream's private suite plus an optional invalidation hook, invoked
/// before unbounded assertions re-evaluate the window (wire the
/// consistency analyzer's Invalidate here — see IncrementalWindowEvaluator).
template <typename Example>
struct SuiteBundle {
  /// The stream's private assertion suite (must be non-null).
  std::shared_ptr<core::AssertionSuite<Example>> suite;
  /// Optional hook run before unbounded assertions re-score the window.
  std::function<void()> invalidate;
};

/// Builds one stream's SuiteBundle; called once per RegisterStream.
template <typename Example>
using SuiteFactory = std::function<SuiteBundle<Example>()>;

}  // namespace omg::runtime
