// The assertion-serving runtime (§2.3 at production scale): many concurrent
// streams monitored by one engine.
//
// Architecture:
//
//   producers ──ObserveBatch──► per-shard FIFO queues ──► ThreadPool workers
//                                                              │
//                              IncrementalWindowEvaluator (one per stream)
//                                                              │
//                                        events ──► EventSinks + MetricsRegistry
//
// Each registered stream is pinned to shard `id % workers`, so all of its
// window state is touched by exactly one worker thread and its events are
// emitted in stream order without locks. Sinks and the metrics registry are
// shared across shards and must be (and are) thread-safe.
#pragma once

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/mutex.hpp"
#include "core/assertion.hpp"
#include "runtime/event_sink.hpp"
#include "runtime/incremental.hpp"
#include "runtime/metrics.hpp"
#include "runtime/stream_registry.hpp"
#include "runtime/suite_bundle.hpp"
#include "runtime/thread_pool.hpp"

namespace omg::runtime {

/// Serving-runtime parameters, shared by every stream.
struct RuntimeConfig {
  /// Worker threads in the service's ThreadPool; streams are pinned to
  /// shard `id % workers`.
  std::size_t workers = 4;
  /// Sliding-window length per stream (examples assertions can see).
  std::size_t window = 64;
  /// How far behind the stream head an example must be before its verdict
  /// is emitted; must exceed every bounded assertion's temporal radius for
  /// verdicts to be final (settle_lag < window).
  std::size_t settle_lag = 8;

  /// Throws CheckError on invalid combinations. In particular a 0-worker
  /// config must be rejected here, before any queue exists: a service with
  /// no workers would accept Observe calls into queues nothing drains and
  /// deadlock silently on Flush.
  void Validate() const {
    common::Check(workers >= 1,
                  "runtime config: workers must be >= 1 (a 0-worker service "
                  "would never drain its queues and Flush would deadlock)");
    common::Check(window >= 1, "runtime config: window must be >= 1");
    common::Check(settle_lag < window,
                  "runtime config: settle_lag must be < window (a verdict "
                  "settles settle_lag examples behind the stream head, so it "
                  "must fit inside the window)");
  }
};

/// Serves an assertion suite over many concurrent example streams.
///
/// Suites are stateful (consistency assertions memoise analyses), so every
/// stream gets its own instance from the factory. Ingestion is asynchronous:
/// Observe/ObserveBatch enqueue and return; call Flush() to wait for
/// quiescence. All public methods are thread-safe.
template <typename Example>
class MonitorService {
 public:
  /// One stream's private suite plus its invalidation hook (shared with
  /// ShardedMonitorService — see runtime/suite_bundle.hpp).
  using SuiteBundle = runtime::SuiteBundle<Example>;
  /// Builds one stream's SuiteBundle; called once per RegisterStream.
  using SuiteFactory = runtime::SuiteFactory<Example>;

  /// Validates `config` (RuntimeConfig::Validate runs before the worker
  /// pool is built) and spawns the workers.
  MonitorService(RuntimeConfig config, SuiteFactory factory)
      : config_(config), factory_(std::move(factory)) {
    config_.Validate();
    common::Check(static_cast<bool>(factory_), "suite factory must be set");
    pool_ = std::make_unique<ThreadPool>(config_.workers);
  }

  ~MonitorService() { pool_.reset(); }  // drain before stream states die

  MonitorService(const MonitorService&) = delete;
  MonitorService& operator=(const MonitorService&) = delete;

  /// The validated configuration this service runs with.
  const RuntimeConfig& config() const { return config_; }
  /// Stream name <-> id mapping.
  const StreamRegistry& registry() const { return registry_; }

  /// Registers a stream and pins it to shard `id % workers`.
  StreamId RegisterStream(std::string name) {
    const StreamId id = registry_.Register(std::move(name));
    metrics_.RegisterStream(id, registry_.Name(id));
    SuiteBundle bundle = factory_();
    common::Check(bundle.suite != nullptr, "suite factory returned null");
    auto state = std::make_unique<StreamState>(id, registry_.Name(id),
                                               std::move(bundle), config_);
    MutexLock lock(streams_mutex_);
    if (id >= streams_.size()) streams_.resize(id + 1);
    streams_[id] = std::move(state);
    return id;
  }

  /// Fans `sink` every event from every stream. Thread-safe; events already
  /// in flight on the workers may miss a sink added concurrently.
  void AddSink(std::shared_ptr<EventSink> sink) {
    common::Check(sink != nullptr, "null sink");
    MutexLock lock(sinks_mutex_);
    sinks_.push_back(std::move(sink));
  }

  /// Enqueues one example for `id` (convenience wrapper; prefer
  /// ObserveBatch under load — batching is where the throughput comes from).
  void Observe(StreamId id, Example example) {
    std::vector<Example> batch;
    batch.push_back(std::move(example));
    ObserveBatch(id, std::move(batch));
  }

  /// Enqueues a batch for `id` and returns immediately. Batches from one
  /// producer are processed in submission order.
  void ObserveBatch(StreamId id, std::vector<Example> batch) {
    if (batch.empty()) return;
    StreamState* state = State(id);
    pool_->Submit(ShardOf(id),
                  [this, state, batch = std::move(batch)]() mutable {
                    Ingest(*state, std::move(batch));
                  });
  }

  /// Blocks until every batch enqueued before this call has been scored and
  /// its events delivered, then flushes the sinks.
  void Flush() {
    pool_->Drain();
    for (const auto& sink : SnapshotSinks()) sink->Flush();
  }

  /// Aggregated dashboard snapshot (does not flush; pair with Flush() for
  /// read-your-writes).
  MetricsSnapshot Metrics() const { return metrics_.Snapshot(); }

  /// Messages from ingestion tasks that threw (a throwing assertion poisons
  /// its batch, not the service).
  std::vector<std::string> Errors() const {
    MutexLock lock(errors_mutex_);
    return errors_;
  }

 private:
  struct StreamState {
    StreamState(StreamId id, std::string_view name, SuiteBundle bundle,
                const RuntimeConfig& config)
        : id(id),
          name(name),
          bundle(std::move(bundle)),
          evaluator(*this->bundle.suite,
                    {config.window, config.settle_lag,
                     this->bundle.invalidate}) {}

    StreamId id;
    std::string_view name;  // owned by the registry
    SuiteBundle bundle;
    IncrementalWindowEvaluator<Example> evaluator;
  };

  std::size_t ShardOf(StreamId id) const { return id % config_.workers; }

  StreamState* State(StreamId id) {
    MutexLock lock(streams_mutex_);
    common::CheckIndex(static_cast<std::ptrdiff_t>(id), 0,
                       static_cast<std::ptrdiff_t>(streams_.size()),
                       "stream id");
    common::Check(streams_[id] != nullptr, "stream still registering");
    return streams_[id].get();
  }

  std::vector<std::shared_ptr<EventSink>> SnapshotSinks() const {
    MutexLock lock(sinks_mutex_);
    return sinks_;
  }

  /// Worker-side scoring: runs on `state`'s shard, exclusively.
  void Ingest(StreamState& state, std::vector<Example> batch) {
    const std::size_t count = batch.size();
    std::vector<StreamEvent> events;
    try {
      state.evaluator.ObserveBatch(
          std::move(batch),
          [&](std::size_t global, std::size_t a, double severity) {
            events.push_back({state.id, state.name, global,
                              state.bundle.suite->at(a).name(), severity});
          });
    } catch (const std::exception& error) {
      MutexLock lock(errors_mutex_);
      errors_.push_back(std::string(state.name) + ": " + error.what());
      return;
    }
    metrics_.RecordBatch(state.id, count, events);
    for (const auto& sink : SnapshotSinks()) {
      for (const StreamEvent& event : events) sink->Consume(event);
    }
  }

  RuntimeConfig config_;
  SuiteFactory factory_;
  StreamRegistry registry_;
  MetricsRegistry metrics_;

  mutable Mutex streams_mutex_;
  /// Index == StreamId.
  std::deque<std::unique_ptr<StreamState>> streams_
      OMG_GUARDED_BY(streams_mutex_);

  mutable Mutex sinks_mutex_;
  std::vector<std::shared_ptr<EventSink>> sinks_ OMG_GUARDED_BY(sinks_mutex_);

  mutable Mutex errors_mutex_;
  std::vector<std::string> errors_ OMG_GUARDED_BY(errors_mutex_);

  // Declared last: destroyed (drained + joined) before the state above.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace omg::runtime
