// Greedy IoU tracker used to assign identifiers to detections across frames.
//
// The paper's consistency API (§4.1, "Video analytics for traffic cameras")
// lacks a globally unique identifier per object, so it assigns a new
// identifier to each box that appears and keeps that identifier while the box
// persists. This tracker implements that association: detections in a new
// frame are greedily matched to live tracks by IoU, unmatched detections
// start new tracks, and tracks unmatched for `max_coast_frames` frames are
// retired.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "geometry/box.hpp"

namespace omg::geometry {

/// A detection annotated with its track identifier.
struct TrackedDetection {
  Detection detection;
  std::int64_t track_id = -1;
};

/// Configuration for the IoU tracker.
struct TrackerConfig {
  /// Minimum IoU for a detection to continue an existing track.
  double min_iou = 0.3;
  /// A track survives this many consecutive unmatched frames before retiring.
  std::size_t max_coast_frames = 2;
};

/// Greedy frame-to-frame IoU tracker.
class IouTracker {
 public:
  explicit IouTracker(TrackerConfig config = {});

  /// Associates one frame's detections with live tracks and returns the
  /// detections with track ids assigned. Call once per frame, in order.
  std::vector<TrackedDetection> Update(std::span<const Detection> detections);

  /// Number of tracks ever created.
  std::int64_t TrackCount() const { return next_track_id_; }

  /// Resets all state (e.g. between videos).
  void Reset();

 private:
  struct Track {
    std::int64_t id;
    Box2D last_box;
    std::string label;
    std::size_t frames_since_match;
  };

  TrackerConfig config_;
  std::vector<Track> tracks_;
  std::int64_t next_track_id_ = 0;
};

}  // namespace omg::geometry
