#include "geometry/tracker.hpp"

#include <algorithm>

namespace omg::geometry {

IouTracker::IouTracker(TrackerConfig config) : config_(config) {}

std::vector<TrackedDetection> IouTracker::Update(
    std::span<const Detection> detections) {
  // Candidate (track, detection, iou) triples above the matching threshold.
  struct Candidate {
    std::size_t track_index;
    std::size_t det_index;
    double iou;
  };
  std::vector<Candidate> candidates;
  for (std::size_t t = 0; t < tracks_.size(); ++t) {
    for (std::size_t d = 0; d < detections.size(); ++d) {
      const double iou = Iou(tracks_[t].last_box, detections[d].box);
      if (iou >= config_.min_iou) candidates.push_back({t, d, iou});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.iou > b.iou;
            });

  std::vector<bool> track_matched(tracks_.size(), false);
  std::vector<std::int64_t> det_track(detections.size(), -1);
  for (const auto& c : candidates) {
    if (track_matched[c.track_index] || det_track[c.det_index] != -1) {
      continue;
    }
    track_matched[c.track_index] = true;
    det_track[c.det_index] = tracks_[c.track_index].id;
    tracks_[c.track_index].last_box = detections[c.det_index].box;
    tracks_[c.track_index].label = detections[c.det_index].label;
    tracks_[c.track_index].frames_since_match = 0;
  }

  // Unmatched detections start new tracks.
  std::vector<TrackedDetection> out;
  out.reserve(detections.size());
  for (std::size_t d = 0; d < detections.size(); ++d) {
    if (det_track[d] == -1) {
      tracks_.push_back(Track{next_track_id_, detections[d].box,
                              detections[d].label, 0});
      det_track[d] = next_track_id_;
      ++next_track_id_;
    }
    out.push_back(TrackedDetection{detections[d], det_track[d]});
  }

  // Age unmatched tracks and retire the stale ones.
  for (std::size_t t = 0; t < track_matched.size(); ++t) {
    if (!track_matched[t]) ++tracks_[t].frames_since_match;
  }
  std::erase_if(tracks_, [this](const Track& track) {
    return track.frames_since_match > config_.max_coast_frames;
  });
  return out;
}

void IouTracker::Reset() {
  tracks_.clear();
  next_track_id_ = 0;
}

}  // namespace omg::geometry
