#include "geometry/box.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace omg::geometry {

using common::Check;

double Box2D::Area() const {
  if (!Valid()) return 0.0;
  return Width() * Height();
}

Box2D Box2D::Translated(double dx, double dy) const {
  return Box2D{x_min + dx, y_min + dy, x_max + dx, y_max + dy};
}

Box2D Box2D::Union(const Box2D& other) const {
  return Box2D{std::min(x_min, other.x_min), std::min(y_min, other.y_min),
               std::max(x_max, other.x_max), std::max(y_max, other.y_max)};
}

double IntersectionArea(const Box2D& a, const Box2D& b) {
  const double w =
      std::min(a.x_max, b.x_max) - std::max(a.x_min, b.x_min);
  const double h =
      std::min(a.y_max, b.y_max) - std::max(a.y_min, b.y_min);
  if (w <= 0.0 || h <= 0.0) return 0.0;
  return w * h;
}

double Iou(const Box2D& a, const Box2D& b) {
  const double inter = IntersectionArea(a, b);
  if (inter <= 0.0) return 0.0;
  const double uni = a.Area() + b.Area() - inter;
  return uni > 0.0 ? inter / uni : 0.0;
}

double Coverage(const Box2D& a, const Box2D& b) {
  const double area = a.Area();
  if (area <= 0.0) return 0.0;
  return IntersectionArea(a, b) / area;
}

Box2D MeanBox(std::span<const Box2D> boxes) {
  Check(!boxes.empty(), "MeanBox of empty span");
  Box2D mean;
  for (const auto& b : boxes) {
    mean.x_min += b.x_min;
    mean.y_min += b.y_min;
    mean.x_max += b.x_max;
    mean.y_max += b.y_max;
  }
  const double n = static_cast<double>(boxes.size());
  mean.x_min /= n;
  mean.y_min /= n;
  mean.x_max /= n;
  mean.y_max /= n;
  return mean;
}

void Camera::Project(double x, double y, double z, double& u,
                     double& v) const {
  Check(z > 0.0, "Camera::Project requires z > 0");
  u = image_width / 2.0 + focal_length * x / z;
  // Image v grows downward while world y grows upward.
  v = image_height / 2.0 - focal_length * y / z;
}

Box2D Camera::ProjectBox(const Box3D& box) const {
  const double z_near = box.z - box.depth / 2.0;
  if (z_near <= 0.1) return Box2D{};  // behind or grazing the camera
  double u_min = 1e300, v_min = 1e300, u_max = -1e300, v_max = -1e300;
  for (int dx = -1; dx <= 1; dx += 2) {
    for (int dy = -1; dy <= 1; dy += 2) {
      for (int dz = -1; dz <= 1; dz += 2) {
        const double cx = box.x + dx * box.width / 2.0;
        const double cy = box.y + dy * box.height / 2.0;
        const double cz = std::max(box.z + dz * box.depth / 2.0, 0.1);
        double u, v;
        Project(cx, cy, cz, u, v);
        u_min = std::min(u_min, u);
        v_min = std::min(v_min, v);
        u_max = std::max(u_max, u);
        v_max = std::max(v_max, v);
      }
    }
  }
  Box2D out{std::max(u_min, 0.0), std::max(v_min, 0.0),
            std::min(u_max, image_width), std::min(v_max, image_height)};
  if (!out.Valid()) return Box2D{};
  return out;
}

std::vector<Detection> Nms(std::vector<Detection> detections,
                           double iou_threshold) {
  std::sort(detections.begin(), detections.end(),
            [](const Detection& a, const Detection& b) {
              return a.confidence > b.confidence;
            });
  std::vector<Detection> kept;
  for (auto& candidate : detections) {
    bool suppressed = false;
    for (const auto& winner : kept) {
      if (winner.label == candidate.label &&
          Iou(winner.box, candidate.box) > iou_threshold) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) kept.push_back(std::move(candidate));
  }
  return kept;
}

}  // namespace omg::geometry
