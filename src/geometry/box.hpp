// 2D / 3D axis-aligned boxes, IoU, and non-maximum suppression.
//
// These are the geometric primitives behind the paper's detection pipelines
// and assertions: `multibox` (three highly-overlapping boxes), `flicker`
// (box association across frames) and `agree` (3D LIDAR boxes projected onto
// the camera plane must overlap 2D detections).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace omg::geometry {

/// Axis-aligned 2D box in pixel coordinates, [x_min, x_max) x [y_min, y_max).
struct Box2D {
  double x_min = 0.0;
  double y_min = 0.0;
  double x_max = 0.0;
  double y_max = 0.0;

  double Width() const { return x_max - x_min; }
  double Height() const { return y_max - y_min; }
  double Area() const;
  double CenterX() const { return 0.5 * (x_min + x_max); }
  double CenterY() const { return 0.5 * (y_min + y_max); }
  bool Valid() const { return x_max > x_min && y_max > y_min; }

  /// Box translated by (dx, dy).
  Box2D Translated(double dx, double dy) const;

  /// Smallest box containing both this and other.
  Box2D Union(const Box2D& other) const;
};

/// Intersection area of two boxes (0 when disjoint).
double IntersectionArea(const Box2D& a, const Box2D& b);

/// Intersection-over-union in [0, 1].
double Iou(const Box2D& a, const Box2D& b);

/// Fraction of `a`'s area covered by `b` (intersection / area(a)).
double Coverage(const Box2D& a, const Box2D& b);

/// Element-wise mean of boxes (used by flicker weak-label imputation, which
/// averages an object's location on nearby frames). Requires non-empty input.
Box2D MeanBox(std::span<const Box2D> boxes);

/// Axis-aligned 3D box (e.g. a LIDAR detection) in ego/world coordinates.
/// x is right, y is up, z is forward (depth away from the camera).
struct Box3D {
  double x = 0.0;  ///< center
  double y = 0.0;  ///< center
  double z = 0.0;  ///< center (depth, > 0 means in front of the camera)
  double width = 0.0;   ///< extent along x
  double height = 0.0;  ///< extent along y
  double depth = 0.0;   ///< extent along z

  double Volume() const { return width * height * depth; }
};

/// Pinhole camera model used to project 3D boxes to the image plane for the
/// `agree` assertion (§2.2: "projects the 3D boxes onto the 2D camera plane").
struct Camera {
  double focal_length = 800.0;  ///< in pixels
  double image_width = 1600.0;
  double image_height = 900.0;

  /// Projects a 3D point to pixel coordinates; the point must be in front of
  /// the camera (z > 0).
  void Project(double x, double y, double z, double& u, double& v) const;

  /// Projects a 3D box's 8 corners and returns the bounding 2D box, clipped
  /// to the image. Returns an invalid (zero-area) box when the object is
  /// entirely behind the camera or off-screen.
  Box2D ProjectBox(const Box3D& box) const;
};

/// A scored, classified detection; the common output type of the simulated
/// detectors.
struct Detection {
  Box2D box;
  std::string label = "car";
  double confidence = 0.0;
  /// Ground-truth object index this detection came from, or -1 for a false
  /// positive. Only the simulator and the evaluation harness read this; the
  /// models and assertions never do.
  std::int64_t truth_id = -1;
};

/// Greedy non-maximum suppression: keeps the highest-confidence detection and
/// drops any remaining detection with IoU > `iou_threshold` against a kept
/// one. Returns kept detections sorted by descending confidence.
std::vector<Detection> Nms(std::vector<Detection> detections,
                           double iou_threshold);

}  // namespace omg::geometry
