#include "av/assertions.hpp"

#include "video/assertions.hpp"  // MultiboxSeverity is shared

namespace omg::av {

double AgreeSeverity(const AvExample& example, double iou) {
  double disagreements = 0.0;
  for (const auto& camera : example.camera) {
    bool overlaps = false;
    for (const auto& lidar : example.lidar_projected) {
      if (!lidar.Valid()) continue;
      if (geometry::Iou(camera.box, lidar) >= iou) {
        overlaps = true;
        break;
      }
    }
    if (!overlaps) disagreements += 1.0;
  }
  for (const auto& lidar : example.lidar_projected) {
    if (!lidar.Valid()) continue;
    bool overlaps = false;
    for (const auto& camera : example.camera) {
      if (geometry::Iou(camera.box, lidar) >= iou) {
        overlaps = true;
        break;
      }
    }
    if (!overlaps) disagreements += 1.0;
  }
  return disagreements;
}

AvSuite BuildAvSuite(const AvAssertionConfig& config) {
  AvSuite built;
  built.suite.AddPointwise(
      "agree", [iou = config.agree_iou](const AvExample& example) {
        return AgreeSeverity(example, iou);
      });
  built.suite.AddPointwise(
      "multibox",
      [iou = config.multibox_iou](const AvExample& example) {
        return video::MultiboxSeverity(example.camera, iou);
      });
  built.agree_index = 0;
  built.multibox_index = 1;
  return built;
}

}  // namespace omg::av
