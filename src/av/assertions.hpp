// AV assertions (§5.1, Table 1): `agree` (LIDAR 3D boxes projected onto the
// camera plane must be consistent with camera detections) and `multibox`
// (three camera boxes should not highly overlap). Flicker/appear are not
// deployed: as in the paper, 2 Hz sampling is too sparse for them.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/assertion.hpp"
#include "geometry/box.hpp"

namespace omg::av {

/// One sample as the assertion layer sees it: both models' deployed outputs.
struct AvExample {
  std::size_t sample_index = 0;
  double timestamp = 0.0;
  std::string scene;
  /// Camera detections (2D, thresholded + NMS).
  std::vector<geometry::Detection> camera;
  /// LIDAR detections already projected onto the camera plane; entries with
  /// invalid (zero-area) boxes were outside the frustum and are skipped.
  std::vector<geometry::Box2D> lidar_projected;
};

/// Assertion-suite parameters.
struct AvAssertionConfig {
  /// Minimum IoU for a camera box and a projected LIDAR box to "agree".
  double agree_iou = 0.20;
  /// Pairwise IoU above which camera boxes count as highly overlapping.
  double multibox_iou = 0.30;
};

/// Severity of `agree` on one sample: the number of camera detections with
/// no overlapping projected LIDAR box plus the number of projected LIDAR
/// boxes with no overlapping camera detection (§2.1's sensor_agreement,
/// counted in both directions).
double AgreeSeverity(const AvExample& example, double iou);

/// The assembled AV suite. Column order: agree, multibox.
struct AvSuite {
  core::AssertionSuite<AvExample> suite;
  std::size_t agree_index = 0;
  std::size_t multibox_index = 1;
};

AvSuite BuildAvSuite(const AvAssertionConfig& config = {});

}  // namespace omg::av
