#include "av/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/check.hpp"
#include "eval/detection_metrics.hpp"

namespace omg::av {

using common::Check;

namespace {

nn::MlpConfig MakeMlpConfig(const CameraDetectorConfig& config,
                            std::size_t feature_dim) {
  nn::MlpConfig mlp;
  mlp.input_dim = feature_dim;
  mlp.hidden = config.hidden;
  mlp.num_classes = 2;
  return mlp;
}

}  // namespace

CameraDetector::CameraDetector(CameraDetectorConfig config,
                               std::size_t feature_dim, std::uint64_t seed)
    : config_(std::move(config)),
      train_rng_(seed),
      model_(MakeMlpConfig(config_, feature_dim), train_rng_) {}

void CameraDetector::Pretrain(const nn::Dataset& data) {
  nn::SoftmaxTrainer trainer(config_.pretrain_sgd);
  trainer.Train(model_, data, train_rng_);
}

void CameraDetector::FineTune(const nn::Dataset& data) {
  nn::SoftmaxTrainer trainer(config_.finetune_sgd);
  trainer.Train(model_, data, train_rng_);
}

double CameraDetector::Score(const CameraProposal& proposal) const {
  return model_.PredictProba(proposal.features)[1];
}

std::vector<geometry::Detection> CameraDetector::DetectWithThreshold(
    const AvSample& sample, double threshold) const {
  std::vector<geometry::Detection> detections;
  for (const auto& proposal : sample.proposals) {
    const double score = Score(proposal);
    if (score < threshold) continue;
    geometry::Detection det;
    det.box = proposal.box;
    det.label = "car";
    det.confidence = score;
    det.truth_id = proposal.truth_id;
    detections.push_back(std::move(det));
  }
  return geometry::Nms(std::move(detections), config_.nms_iou);
}

std::vector<geometry::Detection> CameraDetector::Detect(
    const AvSample& sample) const {
  return DetectWithThreshold(sample, config_.confidence_threshold);
}

std::vector<geometry::Detection> CameraDetector::DetectForEval(
    const AvSample& sample) const {
  return DetectWithThreshold(sample, config_.eval_threshold);
}

double CameraDetector::SampleConfidence(const AvSample& sample) const {
  if (sample.proposals.empty()) return 1.0;
  double total = 0.0;
  for (const auto& proposal : sample.proposals) {
    const double p = Score(proposal);
    total += std::max(p, 1.0 - p);
  }
  return total / static_cast<double>(sample.proposals.size());
}

AvPipeline::AvPipeline(AvPipelineConfig config)
    : config_(std::move(config)),
      world_(config_.world, config_.world_seed),
      suite_(BuildAvSuite(config_.assertions)) {
  pool_ = world_.GenerateScenes(config_.pool_scenes);
  test_ = world_.GenerateScenes(config_.test_scenes);
  pretrain_set_ = world_.PretrainingSet(config_.pretrain_positives,
                                        config_.pretrain_negatives);
  Reset(config_.world_seed ^ 0x9E3779B97F4A7C15ULL);
}

void AvPipeline::Reset(std::uint64_t seed) {
  detector_ = std::make_unique<CameraDetector>(
      config_.detector, config_.world.feature_dim, seed);
  detector_->Pretrain(pretrain_set_);
  labeled_ = nn::Dataset{};
}

std::vector<AvExample> AvPipeline::MakeExamples(
    std::span<const AvSample> samples) const {
  std::vector<AvExample> examples;
  examples.reserve(samples.size());
  for (const auto& sample : samples) {
    AvExample example;
    example.sample_index = sample.index;
    example.timestamp = sample.timestamp;
    example.scene = sample.scene;
    example.camera = detector_->Detect(sample);
    for (const auto& box3 : sample.lidar_boxes) {
      example.lidar_projected.push_back(
          config_.world.camera.ProjectBox(box3));
    }
    examples.push_back(std::move(example));
  }
  return examples;
}

core::SeverityMatrix AvPipeline::ComputeSeverities() {
  const std::vector<AvExample> examples = MakeExamples(pool_);
  return suite_.suite.CheckAll(examples);
}

std::vector<double> AvPipeline::Confidences() {
  std::vector<double> confidences;
  confidences.reserve(pool_.size());
  for (const auto& sample : pool_) {
    confidences.push_back(detector_->SampleConfidence(sample));
  }
  return confidences;
}

void AvPipeline::LabelAndTrain(std::span<const std::size_t> indices) {
  for (const std::size_t i : indices) {
    Check(i < pool_.size(), "label index out of range");
    labeled_.Append(AvWorld::LabelSample(pool_[i]));
  }
  if (labeled_.empty()) return;
  // Replay the original training distribution alongside the new labels, as
  // the paper's retraining procedure does.
  nn::Dataset combined = pretrain_set_;
  combined.Append(labeled_);
  detector_->FineTune(combined);
}

double AvPipeline::EvaluateMap(std::span<const AvSample> samples) const {
  std::vector<eval::FrameEval> evals;
  evals.reserve(samples.size());
  for (const auto& sample : samples) {
    eval::FrameEval fe;
    fe.detections = detector_->DetectForEval(sample);
    fe.truths = sample.truths_2d;
    evals.push_back(std::move(fe));
  }
  return eval::MeanAveragePrecision(evals);
}

double AvPipeline::Evaluate() { return EvaluateMap(test_); }

namespace {

/// Greedy 3D matching by center distance (NuScenes-style).
struct LidarMatch {
  std::vector<bool> lidar_correct;
  std::vector<bool> truth_matched;
};

LidarMatch MatchLidar(const AvSample& sample, double max_center_dist) {
  LidarMatch match;
  match.lidar_correct.assign(sample.lidar_boxes.size(), false);
  match.truth_matched.assign(sample.truths_3d.size(), false);
  for (std::size_t l = 0; l < sample.lidar_boxes.size(); ++l) {
    const auto& box = sample.lidar_boxes[l];
    double best = max_center_dist;
    std::size_t best_truth = sample.truths_3d.size();
    for (std::size_t t = 0; t < sample.truths_3d.size(); ++t) {
      if (match.truth_matched[t]) continue;
      const auto& truth = sample.truths_3d[t];
      const double dist = std::hypot(box.x - truth.x, box.z - truth.z);
      // Oversized boxes (>1.5x the truth volume) count as errors even when
      // centred correctly.
      const bool oversize = box.Volume() > 1.5 * truth.Volume();
      if (dist <= best && !oversize) {
        best = dist;
        best_truth = t;
      }
    }
    if (best_truth < sample.truths_3d.size()) {
      match.lidar_correct[l] = true;
      match.truth_matched[best_truth] = true;
    }
  }
  return match;
}

struct SampleErrors {
  bool camera_fp = false;
  bool camera_fn = false;
  bool lidar_fp = false;   // ghost or oversize
  bool lidar_fn = false;   // missed vehicle
  std::vector<bool> camera_correct;
};

SampleErrors AnalyzeSampleErrors(const AvSample& sample,
                                 const AvExample& example) {
  SampleErrors errors;
  eval::FrameEval fe;
  fe.detections = example.camera;
  fe.truths = sample.truths_2d;
  const eval::MatchResult match = eval::MatchFrame(fe);
  errors.camera_correct = match.detection_correct;
  for (const bool c : match.detection_correct) {
    if (!c) errors.camera_fp = true;
  }
  for (const bool m : match.truth_matched) {
    if (!m) errors.camera_fn = true;
  }
  const LidarMatch lidar = MatchLidar(sample, 2.0);
  for (const bool c : lidar.lidar_correct) {
    if (!c) errors.lidar_fp = true;
  }
  for (const bool m : lidar.truth_matched) {
    if (!m) errors.lidar_fn = true;
  }
  return errors;
}

}  // namespace

video::WeakSupervisionResult RunAvWeakSupervision(AvPipeline& pipeline,
                                                  std::size_t max_samples,
                                                  std::uint64_t seed) {
  common::Rng rng(seed);
  pipeline.Reset(seed);
  video::WeakSupervisionResult result;
  result.pretrained_metric = pipeline.Evaluate();

  // Choose the weak-supervision scenes (the paper used 175 scenes of
  // unlabeled data).
  std::vector<std::size_t> order(pipeline.pool().size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);
  if (order.size() > max_samples) order.resize(max_samples);
  result.flagged_frames_used = order.size();

  const std::vector<AvExample> examples =
      pipeline.MakeExamples(pipeline.pool());
  const double agree_iou = pipeline.config().assertions.agree_iou;

  nn::Dataset weak;
  for (const std::size_t i : order) {
    const AvSample& sample = pipeline.pool()[i];
    const AvExample& example = examples[i];
    // Imputation rule: every projected LIDAR box with no agreeing camera
    // detection proposes a missing 2D box; the best-overlapping camera
    // proposal becomes a weak positive.
    for (const auto& projected : example.lidar_projected) {
      if (!projected.Valid()) continue;
      bool agreed = false;
      for (const auto& camera : example.camera) {
        if (geometry::Iou(camera.box, projected) >= agree_iou) {
          agreed = true;
          break;
        }
      }
      if (agreed) continue;
      double best = 0.25;
      std::int64_t best_p = -1;
      for (std::size_t p = 0; p < sample.proposals.size(); ++p) {
        const double iou =
            geometry::Iou(sample.proposals[p].box, projected);
        if (iou >= best) {
          best = iou;
          best_p = static_cast<std::int64_t>(p);
        }
      }
      if (best_p < 0) continue;
      weak.Add(sample.proposals[static_cast<std::size_t>(best_p)].features,
               1, 1.0);
      ++result.weak_positives;
    }
  }

  // Fine-tune on the imputed boxes with the original training data
  // replayed at reduced weight (see the video pipeline for rationale).
  if (!weak.empty()) {
    nn::Dataset combined;
    for (std::size_t i = 0; i < pipeline.pretrain_set().size(); ++i) {
      combined.Add(pipeline.pretrain_set().features[i],
                   pipeline.pretrain_set().labels[i], 0.5);
    }
    combined.Append(weak);
    pipeline.detector().FineTune(combined);
  }
  result.weakly_supervised_metric = pipeline.Evaluate();
  return result;
}

std::vector<video::AssertionPrecisionSample> MeasureAvAssertionPrecision(
    AvPipeline& pipeline, std::size_t sample_size, std::uint64_t seed) {
  common::Rng rng(seed);
  const std::vector<AvExample> examples =
      pipeline.MakeExamples(pipeline.pool());
  core::SeverityMatrix severities = pipeline.ComputeSeverities();

  std::vector<SampleErrors> errors(examples.size());
  for (std::size_t e = 0; e < examples.size(); ++e) {
    errors[e] = AnalyzeSampleErrors(pipeline.pool()[e], examples[e]);
  }

  std::vector<video::AssertionPrecisionSample> out;
  const auto names = pipeline.suite().suite.Names();
  for (std::size_t a = 0; a < names.size(); ++a) {
    video::AssertionPrecisionSample sample;
    sample.assertion = names[a];
    std::vector<std::size_t> fired = severities.ExamplesFiring(a);
    rng.Shuffle(fired);
    if (fired.size() > sample_size) fired.resize(sample_size);
    sample.sampled = fired.size();
    for (const std::size_t e : fired) {
      bool correct = false;
      if (names[a] == "agree") {
        // "If the assertion triggers, at least one of the sensors returned
        // an incorrect answer" — verify that against ground truth.
        correct = errors[e].camera_fp || errors[e].camera_fn ||
                  errors[e].lidar_fp || errors[e].lidar_fn;
      } else if (names[a] == "multibox") {
        const auto& dets = examples[e].camera;
        for (std::size_t i = 0; i < dets.size() && !correct; ++i) {
          if (errors[e].camera_correct[i]) continue;
          for (std::size_t j = 0; j < dets.size(); ++j) {
            if (j != i && geometry::Iou(dets[i].box, dets[j].box) >
                              pipeline.config().assertions.multibox_iou) {
              correct = true;
              break;
            }
          }
        }
      }
      if (correct) {
        ++sample.correct_model_output;
        ++sample.correct_with_identifier;
      }
    }
    out.push_back(std::move(sample));
  }
  return out;
}

}  // namespace omg::av
