#include "av/world.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace omg::av {

using common::Check;

namespace {

// Camera feature geometry (same scheme as the video domain): dims 0-1 are
// appearance, dim 2 marks distance/darkness, dim 3 marks reflections; the
// pretraining set carries no signal in dims 2-3.
constexpr double kNearPretrainMean[4] = {2.0, 2.0, 0.0, 0.0};
constexpr double kNearDeployMean[4] = {1.3, 1.3, 0.2, 0.0};
constexpr double kDistantMean[4] = {-0.5, -0.5, 1.6, 0.0};
constexpr double kDarkMean[4] = {-0.35, -0.35, 2.0, 0.0};
constexpr double kClutterMean[4] = {-1.8, -1.8, 0.0, 0.0};
constexpr double kHardClutterMean[4] = {-0.3, -0.3, -1.0, 0.0};
constexpr double kReflectionMean[4] = {2.0, 2.0, 0.2, 2.2};

constexpr double kNearNoise = 0.50;
constexpr double kDistantNoise = 0.75;
constexpr double kDarkNoise = 0.90;
constexpr double kClutterNoise = 0.70;
constexpr double kReflectionNoise = 0.35;

constexpr std::size_t kNumArchetypes = 12;
constexpr double kArchetypeSpread = 1.6;   // between-archetype scatter
constexpr double kWithinArchetype = 0.60;  // within-archetype scatter

}  // namespace

AvWorld::AvWorld(AvWorldConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  Check(config_.feature_dim >= 5, "feature_dim must be >= 5");
  Check(config_.samples_per_scene >= 2, "scenes need >= 2 samples");
  const std::size_t archetype_dims = config_.feature_dim - 4;
  auto make_archetypes = [&] {
    std::vector<std::vector<double>> centers(kNumArchetypes);
    for (auto& center : centers) {
      center.resize(archetype_dims);
      for (double& v : center) v = rng_.Normal(0.0, kArchetypeSpread);
    }
    return centers;
  };
  hard_archetypes_ = make_archetypes();
  reflection_archetypes_ = make_archetypes();
}

geometry::Box3D AvWorld::VehicleBox(const Vehicle& vehicle) const {
  geometry::Box3D box;
  box.x = vehicle.x;
  box.y = 0.0;  // center at camera height for simplicity
  box.z = vehicle.z;
  box.width = vehicle.width;
  box.height = vehicle.height;
  box.depth = vehicle.depth;
  return box;
}

std::vector<double> AvWorld::VehicleFeatures(const Vehicle& vehicle) {
  const double* mean = kNearDeployMean;
  double noise = kNearNoise;
  switch (vehicle.kind) {
    case VehicleKind::kNear:
      break;
    case VehicleKind::kDistant:
      mean = kDistantMean;
      noise = kDistantNoise;
      break;
    case VehicleKind::kDark:
      mean = kDarkMean;
      noise = kDarkNoise;
      break;
    case VehicleKind::kReflective:
      mean = kNearDeployMean;
      noise = kNearNoise;
      break;
  }
  std::vector<double> f(config_.feature_dim, 0.0);
  for (std::size_t i = 0; i < config_.feature_dim; ++i) {
    const double base = i < 4 ? mean[i] : 0.0;
    f[i] = base + vehicle.appearance_offset[i] + rng_.Normal(0.0, noise);
  }
  // Camera-hard vehicles carry their correctable signal in the archetype
  // subspace (dims 4+), mirroring the video domain: generalising requires
  // labels near each archetype.
  if (vehicle.kind == VehicleKind::kDistant ||
      vehicle.kind == VehicleKind::kDark) {
    const auto& center = hard_archetypes_[vehicle.archetype];
    for (std::size_t i = 4; i < config_.feature_dim; ++i) {
      f[i] += center[i - 4] + rng_.Normal(0.0, kWithinArchetype);
    }
  }
  return f;
}

std::vector<double> AvWorld::ReflectionFeatures(const Vehicle& vehicle) {
  std::vector<double> f(config_.feature_dim, 0.0);
  for (std::size_t i = 0; i < config_.feature_dim; ++i) {
    const double base = i < 4 ? kReflectionMean[i] : 0.0;
    f[i] = base + 0.5 * vehicle.appearance_offset[i] +
           rng_.Normal(0.0, kReflectionNoise);
  }
  const auto& center = reflection_archetypes_[vehicle.archetype];
  for (std::size_t i = 4; i < config_.feature_dim; ++i) {
    f[i] += center[i - 4] + rng_.Normal(0.0, kWithinArchetype);
  }
  return f;
}

std::vector<double> AvWorld::ClutterFeatures() {
  const double* mean = rng_.Bernoulli(0.5) ? kHardClutterMean : kClutterMean;
  std::vector<double> f(config_.feature_dim, 0.0);
  for (std::size_t i = 0; i < config_.feature_dim; ++i) {
    const double base = i < 4 ? mean[i] : 0.0;
    f[i] = base + rng_.Normal(0.0, kClutterNoise);
  }
  return f;
}

std::vector<AvSample> AvWorld::GenerateScenes(std::size_t count) {
  std::vector<AvSample> samples;
  samples.reserve(count * config_.samples_per_scene);

  for (std::size_t s = 0; s < count; ++s) {
    const std::string scene_name =
        "scene-" + std::to_string(scene_counter_++);

    // Populate the scene.
    std::vector<Vehicle> vehicles;
    const auto n_vehicles = static_cast<std::size_t>(std::max<std::int64_t>(
        1, rng_.UniformInt(
               static_cast<std::int64_t>(config_.expected_vehicles) - 2,
               static_cast<std::int64_t>(config_.expected_vehicles) + 2)));
    for (std::size_t v = 0; v < n_vehicles; ++v) {
      Vehicle vehicle;
      vehicle.id = next_vehicle_id_++;
      const double mix = rng_.Uniform();
      if (mix < config_.frac_distant) {
        vehicle.kind = VehicleKind::kDistant;
        vehicle.z = rng_.Uniform(35.0, 60.0);
      } else if (mix < config_.frac_distant + config_.frac_dark) {
        vehicle.kind = VehicleKind::kDark;
        vehicle.z = rng_.Uniform(10.0, 40.0);
      } else if (mix < config_.frac_distant + config_.frac_dark +
                           config_.frac_reflective) {
        vehicle.kind = VehicleKind::kReflective;
        vehicle.z = rng_.Uniform(8.0, 30.0);
      } else {
        vehicle.kind = VehicleKind::kNear;
        vehicle.z = rng_.Uniform(6.0, 30.0);
      }
      vehicle.x = rng_.Uniform(-0.35, 0.35) * vehicle.z;
      vehicle.vx = rng_.Normal(0.0, 0.15);
      vehicle.vz = rng_.Normal(0.0, 0.9);
      vehicle.width = rng_.Uniform(1.7, 2.1);
      vehicle.height = rng_.Uniform(1.4, 1.9);
      vehicle.depth = rng_.Uniform(4.0, 5.2);
      vehicle.archetype = static_cast<std::size_t>(rng_.UniformInt(
          0, static_cast<std::int64_t>(kNumArchetypes) - 1));
      vehicle.appearance_offset.resize(config_.feature_dim, 0.0);
      for (double& o : vehicle.appearance_offset) o = rng_.Normal(0.0, 0.25);
      vehicles.push_back(std::move(vehicle));
    }

    for (std::size_t step = 0; step < config_.samples_per_scene; ++step) {
      AvSample sample;
      sample.index = sample_index_++;
      sample.timestamp =
          static_cast<double>(sample.index) / config_.sample_hz;
      sample.scene = scene_name;

      for (auto& vehicle : vehicles) {
        const geometry::Box3D box3 = VehicleBox(vehicle);
        const geometry::Box2D box2 = config_.camera.ProjectBox(box3);
        // Skip objects outside the frustum or visible only as a sliver at
        // the image border (no real detector annotates those).
        if (!box2.Valid() || box2.Area() < 120.0 || box2.Width() < 6.0 ||
            box2.Height() < 6.0) {
          continue;
        }

        sample.truths_3d.push_back(box3);
        sample.truths_2d.push_back(eval::GroundTruthBox{box2, "car"});
        sample.truth_ids.push_back(vehicle.id);

        // Camera proposal for the vehicle. Localisation jitter scales with
        // apparent size so distant (small) boxes keep a high IoU with
        // their truth.
        CameraProposal proposal;
        const double jitter = std::max(0.5, 0.02 * box2.Width());
        proposal.box = box2.Translated(rng_.Normal(0.0, jitter),
                                       rng_.Normal(0.0, jitter));
        proposal.features = VehicleFeatures(vehicle);
        proposal.is_vehicle = true;
        proposal.truth_id = vehicle.id;
        sample.proposals.push_back(std::move(proposal));

        // Reflection distractors (multibox driver).
        if (vehicle.reflection_steps_left > 0) {
          --vehicle.reflection_steps_left;
        }
        if (vehicle.kind == VehicleKind::kReflective &&
            vehicle.reflection_steps_left == 0 && rng_.Bernoulli(0.35)) {
          vehicle.reflection_steps_left =
              static_cast<int>(rng_.UniformInt(1, 2));
        }
        if (vehicle.kind == VehicleKind::kReflective &&
            vehicle.reflection_steps_left > 0) {
          const int copies = rng_.Bernoulli(0.5) ? 2 : 1;
          for (int c = 0; c < copies; ++c) {
            CameraProposal reflection;
            reflection.box = box2.Translated(
                box2.Width() * rng_.Uniform(-0.15, 0.15),
                box2.Height() * rng_.Uniform(0.25, 0.5));
            reflection.features = ReflectionFeatures(vehicle);
            reflection.is_vehicle = false;
            reflection.truth_id = -1;
            sample.proposals.push_back(std::move(reflection));
          }
        }

        // LIDAR output for the vehicle.
        const double recall = vehicle.z < 30.0 ? config_.lidar_recall_near
                                               : config_.lidar_recall_far;
        if (rng_.Bernoulli(recall)) {
          geometry::Box3D lidar = box3;
          lidar.x += rng_.Normal(0.0, 0.15);
          lidar.z += rng_.Normal(0.0, 0.25);
          if (rng_.Bernoulli(config_.lidar_oversize_rate)) {
            // The oversized-truck failure mode of Figure 8b.
            lidar.width *= 1.8;
            lidar.depth *= 1.8;
            lidar.height *= 1.4;
          }
          sample.lidar_boxes.push_back(lidar);
        }
      }

      // LIDAR ghosts (false positives from vegetation/ground returns).
      if (rng_.Bernoulli(config_.lidar_ghost_rate)) {
        geometry::Box3D ghost;
        ghost.z = rng_.Uniform(8.0, 45.0);
        ghost.x = rng_.Uniform(-0.3, 0.3) * ghost.z;
        ghost.y = 0.0;
        ghost.width = rng_.Uniform(1.5, 2.2);
        ghost.height = rng_.Uniform(1.2, 1.8);
        ghost.depth = rng_.Uniform(3.5, 5.5);
        sample.lidar_boxes.push_back(ghost);
      }

      // Camera clutter proposals.
      for (int attempt = 0; attempt < 2; ++attempt) {
        if (!rng_.Bernoulli(std::min(1.0, config_.clutter_rate / 2.0))) {
          continue;
        }
        CameraProposal clutter;
        const double w = rng_.Uniform(40.0, 180.0);
        const double h = rng_.Uniform(30.0, 140.0);
        const double x =
            rng_.Uniform(0.0, config_.camera.image_width - w);
        const double y =
            rng_.Uniform(0.0, config_.camera.image_height - h);
        clutter.box = geometry::Box2D{x, y, x + w, y + h};
        clutter.features = ClutterFeatures();
        clutter.is_vehicle = false;
        clutter.truth_id = -1;
        sample.proposals.push_back(std::move(clutter));
      }

      samples.push_back(std::move(sample));

      // Advance the world by one 2 Hz step.
      for (auto& vehicle : vehicles) {
        vehicle.x += vehicle.vx;
        vehicle.z = std::max(4.0, vehicle.z + vehicle.vz);
      }
    }
  }
  return samples;
}

nn::Dataset AvWorld::PretrainingSet(std::size_t positives,
                                    std::size_t negatives) {
  nn::Dataset data;
  for (std::size_t i = 0; i < positives; ++i) {
    std::vector<double> f(config_.feature_dim, 0.0);
    for (std::size_t d = 0; d < config_.feature_dim; ++d) {
      const double base = d < 4 ? kNearPretrainMean[d] : 0.0;
      f[d] = base + rng_.Normal(0.0, kNearNoise + 0.15);
    }
    data.Add(std::move(f), 1);
  }
  for (std::size_t i = 0; i < negatives; ++i) {
    std::vector<double> f(config_.feature_dim, 0.0);
    for (std::size_t d = 0; d < config_.feature_dim; ++d) {
      const double base = d < 4 ? kClutterMean[d] : 0.0;
      f[d] = base + rng_.Normal(0.0, kClutterNoise + 0.15);
    }
    data.Add(std::move(f), 0);
  }
  return data;
}

nn::Dataset AvWorld::LabelSample(const AvSample& sample) {
  nn::Dataset data;
  for (const auto& proposal : sample.proposals) {
    data.Add(proposal.features, proposal.is_vehicle ? 1 : 0);
  }
  return data;
}

}  // namespace omg::av
