// Declarative-config registration of the AV assertions.
//
// `[av.agree, av.multibox]` in that order reproduces BuildAvSuite exactly.
#pragma once

#include "av/assertions.hpp"
#include "config/assertion_factory.hpp"

namespace omg::av {

/// Registers the AV assertions:
///   * `av.agree`    { iou } — camera detections and projected LIDAR boxes
///     must agree (§2.1's sensor_agreement, counted in both directions)
///   * `av.multibox` { iou } — triple-overlap over camera detections
void RegisterAvAssertions(config::AssertionFactory<AvExample>& factory);

}  // namespace omg::av
