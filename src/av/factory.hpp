// Declarative-config + facade registration of the AV assertions.
//
// `[av.agree, av.multibox]` in that order reproduces BuildAvSuite exactly.
// The DomainTraits specialization makes AvExample servable through the
// type-erased serve::Monitor facade; RegisterAvDomain exposes the factory
// as the facade's "av" domain.
#pragma once

#include <string>
#include <string_view>

#include "av/assertions.hpp"
#include "config/assertion_factory.hpp"
#include "serve/any_example.hpp"
#include "serve/domain_registry.hpp"

namespace omg::serve {

/// Facade identity of AvExample: domain tag "av"; the severity hint is the
/// camera-vs-LIDAR detection-count gap (a cheap disagreement proxy).
template <>
struct DomainTraits<av::AvExample> {
  static constexpr std::string_view kDomain = "av";
  static double SeverityHint(const av::AvExample& example);
  static std::string DebugString(const av::AvExample& example);
};

}  // namespace omg::serve

namespace omg::av {

/// Registers the AV assertions:
///   * `av.agree`    { iou } — camera detections and projected LIDAR boxes
///     must agree (§2.1's sensor_agreement, counted in both directions)
///   * `av.multibox` { iou } — triple-overlap over camera detections
void RegisterAvAssertions(config::AssertionFactory<AvExample>& factory);

/// Registers the "av" domain with the facade registry: erased builders
/// over RegisterAvAssertions (event names qualified "av/...").
void RegisterAvDomain(serve::DomainRegistry& registry);

}  // namespace omg::av
