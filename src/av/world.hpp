// Synthetic NuScenes-like autonomous-vehicle world.
//
// The paper's AV task (§5.1) runs two detectors over time-aligned data: the
// Second/PointPillars LIDAR model over point clouds and SSD over camera
// images, sampled at 2 Hz in scenes. The `agree` assertion projects LIDAR 3D
// boxes onto the camera plane and checks overlap with 2D detections; a
// custom weak-supervision rule imputes 2D boxes from the 3D predictions.
//
// This simulator builds 3D scenes of moving vehicles and derives the two
// modalities from the shared world:
//   * LIDAR: a fixed (bootstrapped) detector simulated with distance-
//     dependent recall, box-size noise, occasional oversized boxes and rare
//     ghosts — decorrelated from the camera's failure modes.
//   * Camera: trainable proposal scoring, exactly like the video domain,
//     with its own hard sub-populations (distant and dark vehicles under-
//     represented in pretraining; reflections for multibox).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "eval/detection_metrics.hpp"
#include "geometry/box.hpp"
#include "nn/trainer.hpp"

namespace omg::av {

/// Camera-visibility sub-population of a vehicle.
enum class VehicleKind {
  kNear,        ///< close, well-lit: matches camera pretraining
  kDistant,     ///< far: camera-hard, LIDAR still sees it
  kDark,        ///< boundary camera features, high frame noise
  kReflective,  ///< spawns camera reflection distractors (multibox)
};

/// One candidate camera region with features (same contract as video).
struct CameraProposal {
  geometry::Box2D box;
  std::vector<double> features;
  bool is_vehicle = false;
  std::int64_t truth_id = -1;
};

/// One time-aligned sample (2 Hz): camera proposals + LIDAR detections +
/// ground truth in both spaces.
struct AvSample {
  std::size_t index = 0;
  double timestamp = 0.0;
  std::string scene;
  std::vector<CameraProposal> proposals;
  /// The fixed LIDAR model's output 3D boxes for this sample.
  std::vector<geometry::Box3D> lidar_boxes;
  /// Ground truth.
  std::vector<geometry::Box3D> truths_3d;
  std::vector<eval::GroundTruthBox> truths_2d;
  std::vector<std::int64_t> truth_ids;
};

/// World parameters (defaults used by the benches).
struct AvWorldConfig {
  double sample_hz = 2.0;
  std::size_t samples_per_scene = 40;  ///< 20 s scenes, as in NuScenes
  double expected_vehicles = 5.0;      ///< per scene
  /// Hard sub-populations are rare, as on the road: random sampling meets
  /// them slowly, which is what assertion-driven selection exploits.
  double frac_distant = 0.16;
  double frac_dark = 0.08;
  double frac_reflective = 0.09;
  std::size_t feature_dim = 8;
  geometry::Camera camera;
  /// LIDAR model characteristics.
  double lidar_recall_near = 0.97;   ///< z < 30 m
  double lidar_recall_far = 0.82;    ///< z >= 30 m
  double lidar_oversize_rate = 0.03;
  double lidar_ghost_rate = 0.05;    ///< expected ghosts per sample
  /// Expected camera clutter proposals per sample.
  double clutter_rate = 1.2;
};

/// Deterministic AV world.
class AvWorld {
 public:
  AvWorld(AvWorldConfig config, std::uint64_t seed);

  const AvWorldConfig& config() const { return config_; }

  /// Generates `count` complete scenes (count * samples_per_scene samples).
  std::vector<AvSample> GenerateScenes(std::size_t count);

  /// Camera pretraining set: near vehicles + generic clutter only.
  nn::Dataset PretrainingSet(std::size_t positives, std::size_t negatives);

  /// Human labels for every camera proposal of a sample.
  static nn::Dataset LabelSample(const AvSample& sample);

 private:
  struct Vehicle {
    std::int64_t id;
    VehicleKind kind;
    double x, z;        // lateral / depth, metres (y = ground)
    double vx, vz;      // metres per sample step
    double width, height, depth;
    std::size_t archetype = 0;
    std::vector<double> appearance_offset;
    int reflection_steps_left = 0;
  };

  geometry::Box3D VehicleBox(const Vehicle& vehicle) const;
  std::vector<double> VehicleFeatures(const Vehicle& vehicle);
  std::vector<double> ReflectionFeatures(const Vehicle& vehicle);
  std::vector<double> ClutterFeatures();

  AvWorldConfig config_;
  common::Rng rng_;
  std::vector<std::vector<double>> hard_archetypes_;
  std::vector<std::vector<double>> reflection_archetypes_;
  std::int64_t next_vehicle_id_ = 0;
  std::size_t sample_index_ = 0;
  std::size_t scene_counter_ = 0;
};

}  // namespace omg::av
