// End-to-end AV pipeline: world + fixed LIDAR model + trainable camera
// model + assertions, wired for active learning (Figure 4b / 9b), weak
// supervision via LIDAR box imputation (Table 4) and assertion precision
// (Table 3).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "av/assertions.hpp"
#include "av/world.hpp"
#include "bandit/active_learning.hpp"
#include "nn/mlp.hpp"
#include "video/pipeline.hpp"  // WeakSupervisionResult, AssertionPrecisionSample

namespace omg::av {

/// Trainable camera detector (SSD stand-in) over AvSample proposals.
struct CameraDetectorConfig {
  std::vector<std::size_t> hidden = {16};
  double confidence_threshold = 0.5;
  double eval_threshold = 0.05;
  double nms_iou = 0.5;
  nn::SgdConfig pretrain_sgd{0.08, 0.9, 1e-4, 32, 40};
  nn::SgdConfig finetune_sgd{0.03, 0.9, 1e-4, 32, 12};
};

class CameraDetector {
 public:
  CameraDetector(CameraDetectorConfig config, std::size_t feature_dim,
                 std::uint64_t seed);

  void Pretrain(const nn::Dataset& data);
  void FineTune(const nn::Dataset& data);

  double Score(const CameraProposal& proposal) const;
  std::vector<geometry::Detection> Detect(const AvSample& sample) const;
  std::vector<geometry::Detection> DetectForEval(
      const AvSample& sample) const;
  double SampleConfidence(const AvSample& sample) const;

 private:
  std::vector<geometry::Detection> DetectWithThreshold(
      const AvSample& sample, double threshold) const;

  CameraDetectorConfig config_;
  common::Rng train_rng_;
  nn::Mlp model_;
};

/// Scaled-down analogue of the paper's NuScenes setup (Appendix C).
struct AvPipelineConfig {
  AvWorldConfig world;
  CameraDetectorConfig detector;
  AvAssertionConfig assertions;
  std::size_t pool_scenes = 10;
  std::size_t test_scenes = 4;
  std::size_t pretrain_positives = 400;
  std::size_t pretrain_negatives = 600;
  std::uint64_t world_seed = 37;
};

/// The NuScenes-like active-learning problem (improves the camera model;
/// the LIDAR model stays fixed, as in the paper).
class AvPipeline final : public bandit::ActiveLearningProblem {
 public:
  explicit AvPipeline(AvPipelineConfig config);

  // --- bandit::ActiveLearningProblem ---
  std::size_t PoolSize() const override { return pool_.size(); }
  core::SeverityMatrix ComputeSeverities() override;
  std::vector<double> Confidences() override;
  void LabelAndTrain(std::span<const std::size_t> indices) override;
  double Evaluate() override;
  void Reset(std::uint64_t seed) override;

  // --- direct access ---
  const AvPipelineConfig& config() const { return config_; }
  const std::vector<AvSample>& pool() const { return pool_; }
  const std::vector<AvSample>& test() const { return test_; }
  CameraDetector& detector() { return *detector_; }
  AvSuite& suite() { return suite_; }
  const nn::Dataset& pretrain_set() const { return pretrain_set_; }

  std::vector<AvExample> MakeExamples(
      std::span<const AvSample> samples) const;
  double EvaluateMap(std::span<const AvSample> samples) const;

 private:
  AvPipelineConfig config_;
  AvWorld world_;
  std::vector<AvSample> pool_;
  std::vector<AvSample> test_;
  nn::Dataset pretrain_set_;
  std::unique_ptr<CameraDetector> detector_;
  AvSuite suite_;
  nn::Dataset labeled_;
};

/// §5.5 AV protocol: the custom weak-supervision rule imputes 2D boxes from
/// the fixed LIDAR model's 3D predictions wherever the camera missed them,
/// fine-tunes the camera model on those weak labels only, and compares mAP.
video::WeakSupervisionResult RunAvWeakSupervision(AvPipeline& pipeline,
                                                  std::size_t max_samples,
                                                  std::uint64_t seed);

/// Table 3 precision for `agree` and `multibox` over the pool. `agree`
/// firings are correct when either sensor's model was wrong (camera false
/// positive/negative under 2D matching, or LIDAR ghost / oversize / miss
/// under 3D center-distance matching).
std::vector<video::AssertionPrecisionSample> MeasureAvAssertionPrecision(
    AvPipeline& pipeline, std::size_t sample_size, std::uint64_t seed);

}  // namespace omg::av
