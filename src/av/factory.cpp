#include "av/factory.hpp"

#include "video/assertions.hpp"

namespace omg::av {

void RegisterAvAssertions(config::AssertionFactory<AvExample>& factory) {
  const AvAssertionConfig defaults;

  factory.Register(
      "av.agree",
      "camera detections with no overlapping projected LIDAR box (and vice "
      "versa) count as disagreements",
      {{"iou", config::ParamType::kDouble, "0.20",
        "minimum IoU for a camera box and a projected LIDAR box to agree"}},
      [defaults](const config::SpecSection& params,
                 config::AssertionFactory<AvExample>::BuildContext& context) {
        const double iou = params.GetDouble("iou", defaults.agree_iou);
        context.suite.AddPointwise("agree", [iou](const AvExample& example) {
          return AgreeSeverity(example, iou);
        });
      });

  factory.Register(
      "av.multibox",
      "triple-overlap over the camera detections (same check as "
      "video.multibox)",
      {{"iou", config::ParamType::kDouble, "0.30",
        "pairwise IoU above which camera boxes count as highly overlapping"}},
      [defaults](const config::SpecSection& params,
                 config::AssertionFactory<AvExample>::BuildContext& context) {
        const double iou = params.GetDouble("iou", defaults.multibox_iou);
        context.suite.AddPointwise(
            "multibox", [iou](const AvExample& example) {
              return video::MultiboxSeverity(example.camera, iou);
            });
      });
}

}  // namespace omg::av
