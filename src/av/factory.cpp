#include "av/factory.hpp"

#include <cstddef>
#include <memory>
#include <ostream>
#include <utility>

#include "common/table.hpp"
#include "serve/domains.hpp"
#include "video/assertions.hpp"

namespace omg::serve {

double DomainTraits<av::AvExample>::SeverityHint(
    const av::AvExample& example) {
  const std::size_t camera = example.camera.size();
  const std::size_t lidar = example.lidar_projected.size();
  return static_cast<double>(camera > lidar ? camera - lidar
                                            : lidar - camera);
}

std::string DomainTraits<av::AvExample>::DebugString(
    const av::AvExample& example) {
  return "av sample " + std::to_string(example.sample_index) + " (" +
         example.scene + ") @" +
         common::FormatDouble(example.timestamp, 2) + "s, " +
         std::to_string(example.camera.size()) + " camera / " +
         std::to_string(example.lidar_projected.size()) + " lidar boxes";
}

}  // namespace omg::serve

namespace omg::av {

void RegisterAvAssertions(config::AssertionFactory<AvExample>& factory) {
  const AvAssertionConfig defaults;

  factory.Register(
      "av.agree",
      "camera detections with no overlapping projected LIDAR box (and vice "
      "versa) count as disagreements",
      {{"iou", config::ParamType::kDouble, "0.20",
        "minimum IoU for a camera box and a projected LIDAR box to agree"}},
      [defaults](const config::SpecSection& params,
                 config::AssertionFactory<AvExample>::BuildContext& context) {
        const double iou = params.GetDouble("iou", defaults.agree_iou);
        context.suite.AddPointwise("agree", [iou](const AvExample& example) {
          return AgreeSeverity(example, iou);
        });
      });

  factory.Register(
      "av.multibox",
      "triple-overlap over the camera detections (same check as "
      "video.multibox)",
      {{"iou", config::ParamType::kDouble, "0.30",
        "pairwise IoU above which camera boxes count as highly overlapping"}},
      [defaults](const config::SpecSection& params,
                 config::AssertionFactory<AvExample>::BuildContext& context) {
        const double iou = params.GetDouble("iou", defaults.multibox_iou);
        context.suite.AddPointwise(
            "multibox", [iou](const AvExample& example) {
              return video::MultiboxSeverity(example.camera, iou);
            });
      });
}

void RegisterAvDomain(serve::DomainRegistry& registry) {
  serve::RegisterDomain<AvExample>(registry, "av",
                                  &RegisterAvAssertions);
}

}  // namespace omg::av
