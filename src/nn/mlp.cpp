#include "nn/mlp.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace omg::nn {

using common::Check;

Mlp::Mlp(const MlpConfig& config, common::Rng& rng) : config_(config) {
  Check(config.input_dim > 0, "Mlp input_dim must be positive");
  Check(config.num_classes >= 2, "Mlp needs at least two classes");
  std::vector<std::size_t> dims;
  dims.push_back(config.input_dim);
  dims.insert(dims.end(), config.hidden.begin(), config.hidden.end());
  dims.push_back(config.num_classes);
  for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
    const std::size_t fan_in = dims[l];
    const std::size_t fan_out = dims[l + 1];
    Matrix w(fan_in, fan_out);
    const double scale =
        std::sqrt(2.0 / static_cast<double>(fan_in + fan_out));
    for (double& v : w.Data()) v = rng.Normal(0.0, scale);
    weights_.push_back(std::move(w));
    biases_.emplace_back(1, fan_out);
  }
}

Matrix Mlp::Forward(const Matrix& x,
                    std::vector<Matrix>* activations) const {
  Check(x.cols() == config_.input_dim, "Mlp input dimension mismatch");
  Matrix h = x;
  if (activations != nullptr) activations->clear();
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    Matrix z = h.MatMul(weights_[l]);
    for (std::size_t r = 0; r < z.rows(); ++r) {
      auto row = z.Row(r);
      const auto bias = biases_[l].Row(0);
      for (std::size_t c = 0; c < row.size(); ++c) row[c] += bias[c];
    }
    const bool is_output = (l + 1 == weights_.size());
    if (!is_output) {
      for (double& v : z.Data()) v = std::max(0.0, v);  // ReLU
    }
    if (activations != nullptr) activations->push_back(z);
    h = std::move(z);
  }
  return h;
}

Matrix Mlp::Logits(const Matrix& x) const { return Forward(x, nullptr); }

std::vector<double> Mlp::PredictProba(std::span<const double> x) const {
  Matrix row(1, x.size(), std::vector<double>(x.begin(), x.end()));
  Matrix logits = Forward(row, nullptr);
  return Softmax(logits.Row(0));
}

std::size_t Mlp::Predict(std::span<const double> x) const {
  const auto proba = PredictProba(x);
  return static_cast<std::size_t>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
}

double Mlp::Confidence(std::span<const double> x) const {
  const auto proba = PredictProba(x);
  return *std::max_element(proba.begin(), proba.end());
}

std::size_t Mlp::ParameterCount() const {
  std::size_t count = 0;
  for (const auto& w : weights_) count += w.size();
  for (const auto& b : biases_) count += b.size();
  return count;
}

void SoftmaxRows(Matrix& logits) {
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    auto row = logits.Row(r);
    const double max_logit = *std::max_element(row.begin(), row.end());
    double sum = 0.0;
    for (double& v : row) {
      v = std::exp(v - max_logit);
      sum += v;
    }
    for (double& v : row) v /= sum;
  }
}

std::vector<double> Softmax(std::span<const double> logits) {
  Check(!logits.empty(), "Softmax of empty vector");
  Matrix row(1, logits.size(),
             std::vector<double>(logits.begin(), logits.end()));
  SoftmaxRows(row);
  const auto out = row.Row(0);
  return std::vector<double>(out.begin(), out.end());
}

}  // namespace omg::nn
