// Minibatch SGD training for Mlp with softmax cross-entropy loss.
//
// Supports per-example weights so weak labels (§5.5 of the paper) can be
// down-weighted relative to human labels.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "nn/matrix.hpp"
#include "nn/mlp.hpp"

namespace omg::nn {

/// A labeled classification dataset: one feature row per example.
struct Dataset {
  std::vector<std::vector<double>> features;
  std::vector<std::size_t> labels;
  /// Optional per-example weights; empty means all 1.0.
  std::vector<double> weights;

  std::size_t size() const { return features.size(); }
  bool empty() const { return features.empty(); }

  /// Appends one example.
  void Add(std::vector<double> feature, std::size_t label,
           double weight = 1.0);

  /// Appends all examples of `other`.
  void Append(const Dataset& other);
};

/// Hyper-parameters for SGD with momentum.
struct SgdConfig {
  double learning_rate = 0.05;
  double momentum = 0.9;
  double l2 = 1e-4;
  std::size_t batch_size = 32;
  std::size_t epochs = 10;
};

/// Trains an Mlp in place and reports the loss trajectory.
class SoftmaxTrainer {
 public:
  explicit SoftmaxTrainer(SgdConfig config);

  /// Runs `config.epochs` passes over `data`, shuffling each epoch with
  /// `rng`. Returns the mean weighted cross-entropy of the final epoch.
  double Train(Mlp& model, const Dataset& data, common::Rng& rng);

  /// Mean weighted cross-entropy of `model` on `data` (no update).
  double Loss(const Mlp& model, const Dataset& data) const;

 private:
  /// One gradient step on the batch rows indexed by `batch`. Returns the
  /// summed weighted cross-entropy over the batch.
  double Step(Mlp& model, const Dataset& data,
              std::span<const std::size_t> batch);

  SgdConfig config_;
  std::vector<Matrix> weight_velocity_;
  std::vector<Matrix> bias_velocity_;
};

/// Classification accuracy of `model` on `data` (unweighted).
double Accuracy(const Mlp& model, const Dataset& data);

}  // namespace omg::nn
