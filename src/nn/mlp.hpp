// Small multi-layer perceptron classifier with softmax output.
//
// This is the trainable-model substrate standing in for the paper's deep
// networks (SSD, Second/PointPillars, the ECG ResNet). The models in this
// reproduction operate on low-dimensional synthetic features, so a two-layer
// MLP trained with SGD reproduces the *training dynamics* the paper relies
// on: accuracy improves with labeled data, and improves fastest on the
// sub-populations the labels come from.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "nn/matrix.hpp"

namespace omg::nn {

/// Architecture of an Mlp.
struct MlpConfig {
  std::size_t input_dim = 0;
  /// Hidden layer widths; empty means multinomial logistic regression.
  std::vector<std::size_t> hidden = {};
  std::size_t num_classes = 2;
};

/// Feed-forward network: Dense -> ReLU -> ... -> Dense -> softmax.
class Mlp {
 public:
  /// Initialises weights with Xavier/Glorot scaling from `rng`.
  Mlp(const MlpConfig& config, common::Rng& rng);

  const MlpConfig& config() const { return config_; }

  /// Logits for a batch (rows are examples).
  Matrix Logits(const Matrix& x) const;

  /// Softmax probabilities for a single example.
  std::vector<double> PredictProba(std::span<const double> x) const;

  /// Argmax class for a single example.
  std::size_t Predict(std::span<const double> x) const;

  /// Max softmax probability — the model's confidence in its prediction.
  /// This is the quantity "least confident" uncertainty sampling uses.
  double Confidence(std::span<const double> x) const;

  /// Number of trainable parameters.
  std::size_t ParameterCount() const;

  /// Layer weights/biases (exposed for the optimiser and tests).
  std::vector<Matrix>& weights() { return weights_; }
  std::vector<Matrix>& biases() { return biases_; }
  const std::vector<Matrix>& weights() const { return weights_; }
  const std::vector<Matrix>& biases() const { return biases_; }

 private:
  friend class SoftmaxTrainer;

  /// Forward pass; when `activations` is non-null it receives the
  /// post-activation output of every layer (for backprop).
  Matrix Forward(const Matrix& x, std::vector<Matrix>* activations) const;

  MlpConfig config_;
  std::vector<Matrix> weights_;  // weights_[l] is (fan_in x fan_out)
  std::vector<Matrix> biases_;   // biases_[l] is (1 x fan_out)
};

/// Numerically stable in-place softmax over each row of `logits`.
void SoftmaxRows(Matrix& logits);

/// Softmax of one logit vector.
std::vector<double> Softmax(std::span<const double> logits);

}  // namespace omg::nn
