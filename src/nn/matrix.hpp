// Dense row-major matrix used by the neural-network substrate.
//
// This is deliberately a small, double-precision, single-threaded matrix:
// the models in this reproduction are tiny (tens of units), and double
// precision keeps training bit-reproducible across platforms.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace omg::nn {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix, zero-initialised.
  Matrix(std::size_t rows, std::size_t cols);

  /// rows x cols matrix with the given (row-major) contents.
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }

  double& At(std::size_t r, std::size_t c);
  double At(std::size_t r, std::size_t c) const;

  /// View of row `r`.
  std::span<double> Row(std::size_t r);
  std::span<const double> Row(std::size_t r) const;

  /// Raw storage (row-major).
  std::span<double> Data() { return data_; }
  std::span<const double> Data() const { return data_; }

  /// Sets every element to zero.
  void SetZero();

  /// this += scale * other (same shape).
  void AddScaled(const Matrix& other, double scale);

  /// Returns this * other. Requires cols() == other.rows().
  Matrix MatMul(const Matrix& other) const;

  /// Returns transpose(this) * other. Requires rows() == other.rows().
  Matrix TransposedMatMul(const Matrix& other) const;

  /// Returns this * transpose(other). Requires cols() == other.cols().
  Matrix MatMulTransposed(const Matrix& other) const;

  /// Frobenius norm squared (used for L2 regularisation).
  double SquaredNorm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Builds a matrix whose rows are the given feature vectors (all must have
/// equal length; the result is 0x0 when `rows` is empty).
Matrix StackRows(std::span<const std::vector<double>> rows);

}  // namespace omg::nn
