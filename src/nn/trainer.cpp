#include "nn/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"

namespace omg::nn {

using common::Check;

void Dataset::Add(std::vector<double> feature, std::size_t label,
                  double weight) {
  if (weights.empty() && !features.empty() && weight != 1.0) {
    weights.assign(features.size(), 1.0);
  }
  features.push_back(std::move(feature));
  labels.push_back(label);
  if (!weights.empty() || weight != 1.0) {
    if (weights.empty()) weights.assign(features.size() - 1, 1.0);
    weights.push_back(weight);
  }
}

void Dataset::Append(const Dataset& other) {
  for (std::size_t i = 0; i < other.size(); ++i) {
    Add(other.features[i], other.labels[i],
        other.weights.empty() ? 1.0 : other.weights[i]);
  }
}

SoftmaxTrainer::SoftmaxTrainer(SgdConfig config) : config_(config) {
  Check(config_.learning_rate > 0.0, "learning rate must be positive");
  Check(config_.batch_size > 0, "batch size must be positive");
}

double SoftmaxTrainer::Train(Mlp& model, const Dataset& data,
                             common::Rng& rng) {
  if (data.empty()) return 0.0;
  Check(data.features.size() == data.labels.size(),
        "Dataset features/labels size mismatch");
  if (weight_velocity_.size() != model.weights().size()) {
    weight_velocity_.clear();
    bias_velocity_.clear();
    for (const auto& w : model.weights()) {
      weight_velocity_.emplace_back(w.rows(), w.cols());
    }
    for (const auto& b : model.biases()) {
      bias_velocity_.emplace_back(b.rows(), b.cols());
    }
  }

  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  double last_epoch_loss = 0.0;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    double epoch_loss = 0.0;
    for (std::size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const std::size_t end =
          std::min(start + config_.batch_size, order.size());
      epoch_loss += Step(model, data,
                         std::span<const std::size_t>(order).subspan(
                             start, end - start));
    }
    last_epoch_loss = epoch_loss / static_cast<double>(data.size());
  }
  return last_epoch_loss;
}

double SoftmaxTrainer::Step(Mlp& model, const Dataset& data,
                            std::span<const std::size_t> batch) {
  const std::size_t n = batch.size();
  const std::size_t num_classes = model.config().num_classes;

  Matrix x(n, model.config().input_dim);
  for (std::size_t r = 0; r < n; ++r) {
    const auto& f = data.features[batch[r]];
    Check(f.size() == model.config().input_dim, "feature dim mismatch");
    std::copy(f.begin(), f.end(), x.Row(r).begin());
  }

  std::vector<Matrix> activations;
  Matrix logits = model.Forward(x, &activations);
  Matrix proba = logits;
  SoftmaxRows(proba);

  // dL/dlogits = weight * (p - onehot) / n, and the summed batch loss.
  double batch_loss = 0.0;
  Matrix dlogits(n, num_classes);
  for (std::size_t r = 0; r < n; ++r) {
    const std::size_t label = data.labels[batch[r]];
    Check(label < num_classes, "label out of range");
    const double w =
        data.weights.empty() ? 1.0 : data.weights[batch[r]];
    const auto p = proba.Row(r);
    batch_loss += -w * std::log(std::max(p[label], 1e-12));
    auto d = dlogits.Row(r);
    for (std::size_t c = 0; c < num_classes; ++c) {
      d[c] = w * (p[c] - (c == label ? 1.0 : 0.0)) /
             static_cast<double>(n);
    }
  }

  // Backprop through the dense/ReLU stack.
  const auto& weights = model.weights();
  std::vector<Matrix> grad_w(weights.size());
  std::vector<Matrix> grad_b(weights.size());
  Matrix delta = std::move(dlogits);
  for (std::size_t l = weights.size(); l-- > 0;) {
    const Matrix& input =
        (l == 0) ? x : activations[l - 1];  // post-activation of layer l-1
    grad_w[l] = input.TransposedMatMul(delta);
    grad_b[l] = Matrix(1, delta.cols());
    for (std::size_t r = 0; r < delta.rows(); ++r) {
      const auto d = delta.Row(r);
      auto g = grad_b[l].Row(0);
      for (std::size_t c = 0; c < d.size(); ++c) g[c] += d[c];
    }
    if (l > 0) {
      Matrix next = delta.MatMulTransposed(weights[l]);
      // ReLU mask of the layer below.
      const Matrix& act = activations[l - 1];
      for (std::size_t i = 0; i < next.size(); ++i) {
        if (act.Data()[i] <= 0.0) next.Data()[i] = 0.0;
      }
      delta = std::move(next);
    }
  }

  // SGD with momentum and L2 weight decay (decay on weights only).
  for (std::size_t l = 0; l < weights.size(); ++l) {
    grad_w[l].AddScaled(model.weights()[l], config_.l2);
    weight_velocity_[l].AddScaled(weight_velocity_[l],
                                  config_.momentum - 1.0);  // v *= momentum
    weight_velocity_[l].AddScaled(grad_w[l], -config_.learning_rate);
    model.weights()[l].AddScaled(weight_velocity_[l], 1.0);

    bias_velocity_[l].AddScaled(bias_velocity_[l], config_.momentum - 1.0);
    bias_velocity_[l].AddScaled(grad_b[l], -config_.learning_rate);
    model.biases()[l].AddScaled(bias_velocity_[l], 1.0);
  }
  return batch_loss;
}

double SoftmaxTrainer::Loss(const Mlp& model, const Dataset& data) const {
  if (data.empty()) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto proba = model.PredictProba(data.features[i]);
    const double w = data.weights.empty() ? 1.0 : data.weights[i];
    total += -w * std::log(std::max(proba[data.labels[i]], 1e-12));
  }
  return total / static_cast<double>(data.size());
}

double Accuracy(const Mlp& model, const Dataset& data) {
  if (data.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (model.Predict(data.features[i]) == data.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

}  // namespace omg::nn
