#include "nn/matrix.hpp"

#include "common/check.hpp"

namespace omg::nn {

using common::Check;
using common::CheckIndex;

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  Check(data_.size() == rows_ * cols_, "Matrix data size mismatch");
}

double& Matrix::At(std::size_t r, std::size_t c) {
  CheckIndex(static_cast<std::ptrdiff_t>(r), 0,
             static_cast<std::ptrdiff_t>(rows_), "Matrix row");
  CheckIndex(static_cast<std::ptrdiff_t>(c), 0,
             static_cast<std::ptrdiff_t>(cols_), "Matrix col");
  return data_[r * cols_ + c];
}

double Matrix::At(std::size_t r, std::size_t c) const {
  CheckIndex(static_cast<std::ptrdiff_t>(r), 0,
             static_cast<std::ptrdiff_t>(rows_), "Matrix row");
  CheckIndex(static_cast<std::ptrdiff_t>(c), 0,
             static_cast<std::ptrdiff_t>(cols_), "Matrix col");
  return data_[r * cols_ + c];
}

std::span<double> Matrix::Row(std::size_t r) {
  CheckIndex(static_cast<std::ptrdiff_t>(r), 0,
             static_cast<std::ptrdiff_t>(rows_), "Matrix row");
  return std::span<double>(data_).subspan(r * cols_, cols_);
}

std::span<const double> Matrix::Row(std::size_t r) const {
  CheckIndex(static_cast<std::ptrdiff_t>(r), 0,
             static_cast<std::ptrdiff_t>(rows_), "Matrix row");
  return std::span<const double>(data_).subspan(r * cols_, cols_);
}

void Matrix::SetZero() { std::fill(data_.begin(), data_.end(), 0.0); }

void Matrix::AddScaled(const Matrix& other, double scale) {
  Check(rows_ == other.rows_ && cols_ == other.cols_,
        "AddScaled shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * other.data_[i];
  }
}

Matrix Matrix::MatMul(const Matrix& other) const {
  Check(cols_ == other.rows_, "MatMul inner-dimension mismatch");
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = data_[i * cols_ + k];
      if (a == 0.0) continue;
      const double* b_row = &other.data_[k * other.cols_];
      double* o_row = &out.data_[i * other.cols_];
      for (std::size_t j = 0; j < other.cols_; ++j) o_row[j] += a * b_row[j];
    }
  }
  return out;
}

Matrix Matrix::TransposedMatMul(const Matrix& other) const {
  Check(rows_ == other.rows_, "TransposedMatMul row mismatch");
  Matrix out(cols_, other.cols_);
  for (std::size_t k = 0; k < rows_; ++k) {
    const double* a_row = &data_[k * cols_];
    const double* b_row = &other.data_[k * other.cols_];
    for (std::size_t i = 0; i < cols_; ++i) {
      const double a = a_row[i];
      if (a == 0.0) continue;
      double* o_row = &out.data_[i * other.cols_];
      for (std::size_t j = 0; j < other.cols_; ++j) o_row[j] += a * b_row[j];
    }
  }
  return out;
}

Matrix Matrix::MatMulTransposed(const Matrix& other) const {
  Check(cols_ == other.cols_, "MatMulTransposed col mismatch");
  Matrix out(rows_, other.rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* a_row = &data_[i * cols_];
    for (std::size_t j = 0; j < other.rows_; ++j) {
      const double* b_row = &other.data_[j * other.cols_];
      double sum = 0.0;
      for (std::size_t k = 0; k < cols_; ++k) sum += a_row[k] * b_row[k];
      out.data_[i * other.rows_ + j] = sum;
    }
  }
  return out;
}

double Matrix::SquaredNorm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return sum;
}

Matrix StackRows(std::span<const std::vector<double>> rows) {
  if (rows.empty()) return Matrix();
  const std::size_t cols = rows.front().size();
  Matrix out(rows.size(), cols);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    Check(rows[r].size() == cols, "StackRows ragged input");
    std::copy(rows[r].begin(), rows[r].end(), out.Row(r).begin());
  }
  return out;
}

}  // namespace omg::nn
