#include "replay/replay.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <tuple>
#include <unistd.h>
#include <utility>

#include "config/monitor_loader.hpp"
#include "net/client.hpp"
#include "net/codec.hpp"
#include "net/server.hpp"
#include "obs/clock.hpp"

namespace omg::replay {

namespace {

serve::Error Err(serve::ErrorCode code, std::string message) {
  return serve::Error{code, std::move(message)};
}

/// Renders one event exactly as runtime::JsonLinesSink::Consume does —
/// same escaping, same %.17g severity — so a canonical flag document is
/// byte-comparable with a live JSON-lines capture of the same events.
std::string RenderLine(const runtime::CollectingSink::OwnedEvent& event) {
  std::array<char, 32> severity{};
  std::snprintf(severity.data(), severity.size(), "%.17g", event.severity);
  std::string line;
  line += "{\"stream\":\"";
  line += runtime::JsonEscape(event.stream);
  line += "\",\"example\":";
  line += std::to_string(event.example_index);
  line += ",\"assertion\":\"";
  line += runtime::JsonEscape(event.assertion);
  line += "\",\"severity\":";
  line += severity.data();
  line += "}\n";
  return line;
}

void DefaultSleep(std::uint64_t ns) {
  std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

/// The scenario copy a replay actually runs: kBlock admission (nothing is
/// shed, so offered == scored and the flag set is deterministic), no
/// improvement loop, no server section, optional shard override.
config::ScenarioSpec ReplaySpecOf(const config::ScenarioSpec& scenario,
                                  const ReplayOptions& options) {
  config::ScenarioSpec spec = scenario;
  spec.admission.policy = runtime::AdmissionPolicy::kBlock;
  spec.loop.enabled = false;
  spec.server.enabled = false;
  if (options.shards > 0) spec.runtime.shards = options.shards;
  return spec;
}

/// Per-trace-stream replay state resolved against the scenario.
struct StreamBinding {
  const config::BoundStream* bound = nullptr;
  const net::PayloadCodec* codec = nullptr;
  std::uint64_t wire_binding = 0;  ///< over-wire BIND_STREAM id
};

}  // namespace

FlagSummary SummariseFlags(
    std::vector<runtime::CollectingSink::OwnedEvent> events) {
  std::sort(events.begin(), events.end(),
            [](const runtime::CollectingSink::OwnedEvent& a,
               const runtime::CollectingSink::OwnedEvent& b) {
              return std::tie(a.stream, a.example_index, a.assertion,
                              a.severity) < std::tie(b.stream,
                                                     b.example_index,
                                                     b.assertion, b.severity);
            });
  FlagSummary summary;
  summary.lines.reserve(events.size());
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const runtime::CollectingSink::OwnedEvent& event : events) {
    std::string line = RenderLine(event);
    for (const char c : line) {
      hash ^= static_cast<std::uint8_t>(c);
      hash *= 0x100000001b3ull;
    }
    summary.lines.push_back(std::move(line));
  }
  summary.digest = hash;
  return summary;
}

serve::Result<RecordReport> RecordScenarioTrace(
    const config::ScenarioSpec& scenario,
    const serve::DomainRegistry& domains, const common::TrafficMap& traffic,
    const std::string& path, double record_eps) {
  if (!(record_eps > 0.0)) {
    return Err(serve::ErrorCode::kInvalidArgument,
               "record_eps must be positive (it sets the synthetic "
               "inter-arrival rate)");
  }
  if (scenario.streams.empty()) {
    return Err(serve::ErrorCode::kInvalidArgument,
               "scenario '" + scenario.name + "' declares no streams");
  }
  TraceInfo info;
  info.scenario = scenario.name;
  if (!scenario.source.empty()) {
    const serve::Result<std::uint64_t> hash = HashFile(scenario.source);
    if (hash.ok()) info.scenario_hash = hash.value();
  }
  for (const config::StreamSpec& stream : scenario.streams) {
    info.streams.push_back(
        TraceStreamInfo{stream.name, stream.domain, stream.severity_hint});
  }
  serve::Result<TraceWriter> writer = TraceWriter::Open(path, info);
  if (!writer.ok()) return writer.error();

  // Interleave batches round-robin across streams in file order — the same
  // schedule the harness serves live — so replayed load mixes domains the
  // way the live scenario does rather than draining streams one by one.
  struct Cursor {
    const config::StreamSpec* spec = nullptr;
    const std::vector<serve::AnyExample>* examples = nullptr;
    const net::PayloadCodec* codec = nullptr;
    std::size_t next = 0;
  };
  std::vector<Cursor> cursors;
  for (const config::StreamSpec& stream : scenario.streams) {
    Cursor cursor;
    cursor.spec = &stream;
    const auto it = traffic.find(stream.name);
    if (it == traffic.end() || it->second.empty()) continue;  // nothing to record
    cursor.examples = &it->second;
    cursor.codec = domains.CodecFor(stream.domain);
    if (cursor.codec == nullptr) {
      return Err(serve::ErrorCode::kUnknownDomain,
                 "stream '" + stream.name + "' domain '" + stream.domain +
                     "' has no registered payload codec");
    }
    cursors.push_back(cursor);
  }
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t c = 0; c < cursors.size(); ++c) {
      // The stream's trace-table index is its position in the scenario's
      // stream list, not in the (traffic-filtered) cursor list.
      Cursor& cursor = cursors[c];
      const std::size_t remaining = cursor.examples->size() - cursor.next;
      if (remaining == 0) continue;
      const std::size_t batch =
          std::min(cursor.spec->batch > 0 ? cursor.spec->batch : 1,
                   remaining);
      const std::span<const serve::AnyExample> slice(
          cursor.examples->data() + cursor.next, batch);
      const std::vector<std::uint8_t> payload =
          net::EncodeBatch(*cursor.codec, slice);
      const std::uint32_t stream_index = static_cast<std::uint32_t>(
          cursor.spec - scenario.streams.data());
      const std::uint64_t delta_ns = static_cast<std::uint64_t>(
          static_cast<double>(batch) * 1e9 / record_eps);
      const serve::Result<bool> appended = writer.value().Append(
          stream_index, delta_ns, static_cast<std::uint32_t>(batch),
          cursor.spec->severity_hint, payload);
      if (!appended.ok()) return appended.error();
      cursor.next += batch;
      progressed = true;
    }
  }
  if (writer.value().records() == 0) {
    return Err(serve::ErrorCode::kInvalidArgument,
               "no traffic to record: every stream's example list is empty");
  }
  const serve::Result<bool> finished = writer.value().Finish();
  if (!finished.ok()) return finished.error();
  RecordReport report;
  report.records = writer.value().records();
  report.examples = writer.value().examples();
  report.scenario_hash = info.scenario_hash;
  return report;
}

serve::Result<ReplayReport> ReplayTrace(const config::ScenarioSpec& scenario,
                                        const serve::DomainRegistry& domains,
                                        TraceReader& trace,
                                        const ReplayOptions& options) {
  const TraceInfo& info = trace.info();
  if (info.scenario != scenario.name) {
    return Err(serve::ErrorCode::kInvalidArgument,
               "trace was recorded from scenario '" + info.scenario +
                   "', not '" + scenario.name + "'");
  }
  if (options.verify_scenario_hash && info.scenario_hash != 0 &&
      !scenario.source.empty()) {
    const serve::Result<std::uint64_t> hash = HashFile(scenario.source);
    if (hash.ok() && hash.value() != info.scenario_hash) {
      return Err(serve::ErrorCode::kInvalidArgument,
                 "scenario config '" + scenario.source +
                     "' has changed since this trace was recorded "
                     "(hash mismatch) — re-record or pass "
                     "verify_scenario_hash = false");
    }
  }
  if (!(options.speed >= 0.0)) {
    return Err(serve::ErrorCode::kInvalidArgument,
               "speed must be >= 0 (0 replays unpaced)");
  }

  const config::ScenarioSpec spec = ReplaySpecOf(scenario, options);
  config::ScenarioMonitor hosted =
      config::BuildScenarioMonitor(spec, domains);

  // Resolve every trace stream against the freshly built monitor.
  std::vector<StreamBinding> bindings(info.streams.size());
  for (std::size_t s = 0; s < info.streams.size(); ++s) {
    const TraceStreamInfo& stream = info.streams[s];
    for (const config::BoundStream& bound : hosted.streams) {
      if (bound.spec.name == stream.name) {
        bindings[s].bound = &bound;
        break;
      }
    }
    if (bindings[s].bound == nullptr) {
      return Err(serve::ErrorCode::kUnknownStream,
                 "trace stream '" + stream.name +
                     "' does not exist in scenario '" + scenario.name + "'");
    }
    if (bindings[s].bound->spec.domain != stream.domain) {
      return Err(serve::ErrorCode::kWrongDomain,
                 "trace stream '" + stream.name + "' was recorded as domain '" +
                     stream.domain + "' but the scenario declares '" +
                     bindings[s].bound->spec.domain + "'");
    }
    bindings[s].codec = domains.CodecFor(stream.domain);
    if (bindings[s].codec == nullptr) {
      return Err(serve::ErrorCode::kUnknownDomain,
                 "trace stream '" + stream.name + "' domain '" +
                     stream.domain + "' has no registered payload codec");
    }
  }

  const auto sink = std::make_shared<runtime::CollectingSink>();
  serve::Subscription subscription =
      hosted.monitor->Subscribe(serve::EventFilter{}, sink);

  // Over-wire mode hosts the same monitor behind a real IngestServer and
  // pushes the recorded payload bytes through a UDS connection — the full
  // encode -> socket -> reassemble -> decode path, no client-side
  // re-encode, so the bytes on the wire are the bytes in the trace.
  std::unique_ptr<net::IngestServer> server;
  std::optional<net::ClientConnection> client;
  if (options.over_wire) {
    net::IngestServerOptions server_options;
    server_options.uds_path =
        options.uds_path.empty()
            ? "/tmp/omg-replay-" + std::to_string(::getpid()) + ".sock"
            : options.uds_path;
    server = std::make_unique<net::IngestServer>(server_options,
                                                 *hosted.monitor, domains);
    for (const StreamBinding& binding : bindings) {
      server->ExposeStream(binding.bound->handle);
    }
    const serve::Result<net::ServerEndpoints> endpoints = server->Start();
    if (!endpoints.ok()) return endpoints.error();
    serve::Result<net::ClientConnection> connected =
        net::ClientConnection::ConnectUds(endpoints.value().uds_path);
    if (!connected.ok()) return connected.error();
    client.emplace(std::move(connected.value()));
    const serve::Result<std::uint64_t> session = client->Hello("replay", "");
    if (!session.ok()) return session.error();
    for (std::size_t s = 0; s < bindings.size(); ++s) {
      const serve::Result<std::uint64_t> bound = client->BindStream(
          info.streams[s].domain, info.streams[s].name);
      if (!bound.ok()) return bound.error();
      bindings[s].wire_binding = bound.value();
    }
  }

  const auto sleep_ns =
      options.sleep_ns ? options.sleep_ns : DefaultSleep;
  const std::uint64_t start_ns = obs::Clock::NowNs();
  double target_ns = 0.0;
  std::uint64_t offered = 0;

  trace.Rewind();
  for (;;) {
    serve::Result<std::optional<TraceRecord>> next = trace.Next();
    if (!next.ok()) return next.error();
    if (!next.value().has_value()) break;
    TraceRecord& record = *next.value();
    if (options.speed > 0.0) {
      target_ns += static_cast<double>(record.delta_ns) / options.speed;
      const std::uint64_t elapsed =
          obs::Clock::ElapsedNs(start_ns, obs::Clock::NowNs());
      if (target_ns > static_cast<double>(elapsed)) {
        sleep_ns(static_cast<std::uint64_t>(target_ns -
                                            static_cast<double>(elapsed)));
      }
    }
    const StreamBinding& binding = bindings[record.stream];
    if (options.over_wire) {
      const serve::Result<bool> sent = client->SendEncoded(
          binding.wire_binding, info.streams[record.stream].domain,
          record.count, record.payload, record.hint);
      if (!sent.ok()) return sent.error();
    } else {
      serve::Result<std::vector<serve::AnyExample>> batch = net::DecodeBatch(
          *binding.codec, record.payload, record.count);
      if (!batch.ok()) {
        return Err(batch.code(),
                   "record " + std::to_string(record.index) + ": " +
                       batch.error().message);
      }
      const serve::Result<serve::ObserveOutcome> observed =
          hosted.monitor->ObserveBatch(binding.bound->handle,
                                       std::move(batch.value()), record.hint);
      if (!observed.ok()) {
        return Err(observed.code(),
                   "record " + std::to_string(record.index) + ": " +
                       observed.error().message);
      }
    }
    offered += record.count;
  }

  ReplayReport report;
  if (options.over_wire) {
    // Stats() flushes the server-side monitor before reading, so the
    // counters and the sink's events are both complete.
    const serve::Result<std::vector<std::uint64_t>> stats = client->Stats();
    if (!stats.ok()) return stats.error();
    const std::vector<std::uint64_t>& s = stats.value();
    report.offered = s[0];
    report.quota_rejected = s[2];
    report.decode_errors = s[3];
    report.scored = s[4];
    report.shed = s[5];
    report.dropped = s[6];
    report.errored = s[7];
    client->Goodbye();
    server->Stop();
  } else {
    hosted.monitor->Flush();
    const runtime::MetricsSnapshot metrics = hosted.monitor->Metrics();
    report.offered = offered;
    report.scored = metrics.examples_seen;
    report.shed = metrics.TotalShedExamples();
    report.dropped = metrics.TotalDroppedExamples();
    report.errored = metrics.TotalErroredExamples();
  }
  report.elapsed_seconds =
      obs::Clock::ToSeconds(obs::Clock::ElapsedNs(start_ns, obs::Clock::NowNs()));
  report.accounted = report.offered == report.scored + report.shed +
                                           report.dropped + report.errored;
  report.flags = SummariseFlags(sink->Events());
  return report;
}

}  // namespace omg::replay
