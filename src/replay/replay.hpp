// Deterministic trace record and replay.
//
// Recording captures a scenario's pregenerated traffic (the shared
// common::GenerateScenarioTraffic output) into a trace file
// (trace_file.hpp), batched and interleaved round-robin across streams in
// exactly the order the harness serves live — so a recorded trace is the
// live run, frozen. Inter-arrival deltas are synthesized from a configured
// offered rate rather than sampled from the wall clock: recording is
// deterministic, byte-for-byte.
//
// Replay drives a recorded trace back into a serve::Monitor built from the
// same scenario config — in-process (codec decode -> ObserveBatch) or over
// a Unix-domain socket through a real net::IngestServer (the full wire
// path: encode -> syscalls -> reassembly -> decode) — at a speed factor:
// speed 1 honours the recorded deltas, N divides them, 0 is unpaced
// max-rate. Replay forces kBlock admission and ignores [loop], so every
// offered example is scored: offered == scored exactly, and the flag set
// is a pure function of the trace + config.
//
// The golden-flag contract: the runtime only promises per-stream event
// order (shards interleave streams arbitrarily), so raw flag sequences are
// set-equal but not byte-equal across shard counts and transports.
// SummariseFlags therefore sorts events into canonical order
// (stream, example, assertion, severity) and renders each exactly like
// runtime::JsonLinesSink, yielding a byte-identical JSON-lines document —
// and one FNV-1a digest — for ANY equivalent replay: twice in a row,
// across shard counts, in-process vs over UDS. tools/check_replay_golden.py
// holds shipped traces to that digest in CI.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/example_gen.hpp"
#include "config/scenario.hpp"
#include "replay/trace_file.hpp"
#include "runtime/event_sink.hpp"
#include "serve/domain_registry.hpp"
#include "serve/result.hpp"

namespace omg::replay {

/// A flag set in canonical order with its digest.
struct FlagSummary {
  /// JSON-lines events (JsonLinesSink rendering, '\n'-terminated), sorted
  /// by (stream, example, assertion, severity).
  std::vector<std::string> lines;
  /// FNV-1a 64 over the concatenated lines — the golden digest.
  std::uint64_t digest = 0;
};

/// Canonicalises collected events; deterministic for any event arrival
/// order that is a permutation of the same multiset.
FlagSummary SummariseFlags(
    std::vector<runtime::CollectingSink::OwnedEvent> events);

/// What RecordScenarioTrace wrote.
struct RecordReport {
  std::uint64_t records = 0;
  std::uint64_t examples = 0;
  std::uint64_t scenario_hash = 0;
};

/// Records `traffic` (keyed by stream name; normally
/// common::GenerateScenarioTraffic(scenario)) to `path`, interleaving
/// batches of StreamSpec::batch round-robin across the scenario's streams.
/// `record_eps` sets the synthetic offered rate the inter-arrival deltas
/// encode (must be > 0). The scenario hash is FNV-1a of the config file at
/// scenario.source (0 when unreadable, e.g. an in-memory spec).
serve::Result<RecordReport> RecordScenarioTrace(
    const config::ScenarioSpec& scenario,
    const serve::DomainRegistry& domains, const common::TrafficMap& traffic,
    const std::string& path, double record_eps);

/// Replay knobs.
struct ReplayOptions {
  /// Delta divisor: 1 = recorded pacing, N = Nx faster, 0 = unpaced.
  double speed = 1.0;
  /// Replay through a net::IngestServer over a Unix-domain socket instead
  /// of calling ObserveBatch directly.
  bool over_wire = false;
  /// Socket path for over_wire ("" = derived from the pid).
  std::string uds_path;
  /// Overrides [runtime] shards when nonzero (cross-shard determinism
  /// checks replay one trace at several counts).
  std::size_t shards = 0;
  /// Pacing sleep, injectable for tests (default: this_thread::sleep_for).
  /// Called only for positive waits; time is read from obs::Clock, so a
  /// test installing a fake clock source observes exact pacing.
  std::function<void(std::uint64_t)> sleep_ns;
  /// Reject a trace whose scenario hash does not match the config file at
  /// scenario.source (skipped when the file is unreadable or either hash
  /// is zero).
  bool verify_scenario_hash = true;
};

/// What a replay did and what the monitor said about it.
struct ReplayReport {
  std::uint64_t offered = 0;
  std::uint64_t scored = 0;
  std::uint64_t shed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t errored = 0;
  /// Wire-path rejects (always 0 on a clean replay; over_wire only).
  std::uint64_t decode_errors = 0;
  std::uint64_t quota_rejected = 0;
  /// Dispatch wall time (obs::Clock), excluding monitor construction.
  double elapsed_seconds = 0.0;
  /// True when offered == scored + shed + dropped + errored held exactly.
  bool accounted = false;
  FlagSummary flags;
};

/// Replays `trace` (from its current position; rewound first) into a fresh
/// monitor built from `scenario`. Validates that every trace stream exists
/// in the scenario with the same domain and that scenario name/hash match
/// the trace header. Typed errors for mismatches, wire failures, and
/// undecodable records; replay aborts on the first failed record.
serve::Result<ReplayReport> ReplayTrace(const config::ScenarioSpec& scenario,
                                        const serve::DomainRegistry& domains,
                                        TraceReader& trace,
                                        const ReplayOptions& options = {});

}  // namespace omg::replay
