#include "replay/trace_file.hpp"

#include <fstream>
#include <utility>

namespace omg::replay {

namespace {

serve::Error Err(serve::ErrorCode code, std::string message) {
  return serve::Error{code, std::move(message)};
}

/// Encodes the kTraceHeader frame for `info`. The encoding's length
/// depends only on the string fields, so re-encoding with updated counts
/// produces a byte-identical-length frame (what Finish's in-place patch
/// relies on).
std::vector<std::uint8_t> EncodeHeaderFrame(const TraceInfo& info) {
  net::WireWriter payload;
  payload.U32(info.format_version);
  payload.String(info.scenario);
  payload.U64(info.scenario_hash);
  payload.U64(info.records);
  payload.U64(info.examples);
  payload.U32(static_cast<std::uint32_t>(info.streams.size()));
  for (const TraceStreamInfo& stream : info.streams) {
    payload.String(stream.name);
    payload.String(stream.domain);
    payload.F64(stream.severity_hint);
  }
  net::FrameHeader header;
  header.type = net::FrameType::kTraceHeader;
  return net::EncodeFrame(header, payload.bytes());
}

}  // namespace

std::uint64_t Fnv1a64(std::span<const std::uint8_t> bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const std::uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::uint64_t Fnv1a64(std::string_view text) {
  return Fnv1a64(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

serve::Result<std::uint64_t> HashFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return Err(serve::ErrorCode::kIoError, "cannot read '" + path + "'");
  }
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  return Fnv1a64(bytes);
}

// ----------------------------------------------------------------- writer ---

serve::Result<TraceWriter> TraceWriter::Open(const std::string& path,
                                             TraceInfo info) {
  if (info.streams.empty()) {
    return Err(serve::ErrorCode::kInvalidArgument,
               "a trace needs at least one stream");
  }
  for (const TraceStreamInfo& stream : info.streams) {
    if (stream.domain.size() > net::FrameHeader::kDomainBytes) {
      return Err(serve::ErrorCode::kInvalidArgument,
                 "stream '" + stream.name + "' domain '" + stream.domain +
                     "' exceeds the wire domain field");
    }
  }
  info.format_version = kTraceFormatVersion;
  info.records = 0;
  info.examples = 0;
  TraceWriter writer;
  writer.info_ = std::move(info);
  writer.out_.open(path, std::ios::binary | std::ios::trunc);
  if (!writer.out_.good()) {
    return Err(serve::ErrorCode::kIoError,
               "cannot create trace file '" + path + "'");
  }
  const std::vector<std::uint8_t> header = EncodeHeaderFrame(writer.info_);
  writer.out_.write(reinterpret_cast<const char*>(header.data()),
                    static_cast<std::streamsize>(header.size()));
  if (!writer.out_.good()) {
    return Err(serve::ErrorCode::kIoError,
               "write failed on trace file '" + path + "'");
  }
  return writer;
}

serve::Result<bool> TraceWriter::Append(std::uint32_t stream,
                                        std::uint64_t delta_ns,
                                        std::uint32_t count, double hint,
                                        std::span<const std::uint8_t> payload) {
  if (finished_) {
    return Err(serve::ErrorCode::kInvalidArgument,
               "Append after Finish on a trace writer");
  }
  if (stream >= info_.streams.size()) {
    return Err(serve::ErrorCode::kInvalidArgument,
               "record stream index " + std::to_string(stream) +
                   " is outside the " +
                   std::to_string(info_.streams.size()) +
                   "-entry stream table");
  }
  net::FrameHeader header;
  header.type = net::FrameType::kData;
  header.seq = records_;
  header.session = delta_ns;
  header.stream = stream;
  header.set_domain_tag(info_.streams[stream].domain);
  header.count = count;
  header.set_hint(hint);
  const std::vector<std::uint8_t> frame = net::EncodeFrame(header, payload);
  out_.write(reinterpret_cast<const char*>(frame.data()),
             static_cast<std::streamsize>(frame.size()));
  if (!out_.good()) {
    return Err(serve::ErrorCode::kIoError, "write failed on trace file");
  }
  ++records_;
  examples_ += count;
  return true;
}

serve::Result<bool> TraceWriter::Finish() {
  if (finished_) return true;
  finished_ = true;
  info_.records = records_;
  info_.examples = examples_;
  const std::vector<std::uint8_t> header = EncodeHeaderFrame(info_);
  out_.seekp(0);
  out_.write(reinterpret_cast<const char*>(header.data()),
             static_cast<std::streamsize>(header.size()));
  out_.flush();
  if (!out_.good()) {
    return Err(serve::ErrorCode::kIoError,
               "header patch failed on trace file");
  }
  out_.close();
  return true;
}

// ----------------------------------------------------------------- reader ---

serve::Error TraceReader::At(serve::ErrorCode code, std::size_t offset,
                             const std::string& message) const {
  return serve::Error{code, "trace '" + path_ + "' at byte offset " +
                                std::to_string(offset) + ": " + message};
}

serve::Result<TraceReader> TraceReader::Open(const std::string& path) {
  TraceReader reader;
  reader.path_ = path;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) {
      return Err(serve::ErrorCode::kIoError,
                 "cannot read trace file '" + path + "'");
    }
    reader.bytes_.assign(std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>());
  }
  const serve::Result<net::Frame> frame =
      net::DecodeFrame(std::span<const std::uint8_t>(reader.bytes_));
  if (!frame.ok()) {
    return reader.At(frame.code(), 0,
                     "trace header frame: " + frame.error().message);
  }
  if (frame.value().header.type != net::FrameType::kTraceHeader) {
    return reader.At(
        serve::ErrorCode::kMalformedPayload, 0,
        "leading frame is '" +
            std::string(net::FrameTypeName(frame.value().header.type)) +
            "', not trace_header — not a trace file");
  }
  net::WireReader payload(frame.value().payload);
  TraceInfo& info = reader.info_;
  std::uint32_t stream_count = 0;
  if (!payload.U32(info.format_version) || !payload.String(info.scenario) ||
      !payload.U64(info.scenario_hash) || !payload.U64(info.records) ||
      !payload.U64(info.examples) || !payload.U32(stream_count)) {
    return reader.At(serve::ErrorCode::kMalformedPayload, 0,
                     "trace header payload truncated");
  }
  if (info.format_version != kTraceFormatVersion) {
    return reader.At(serve::ErrorCode::kMalformedPayload, 0,
                     "trace format version " +
                         std::to_string(info.format_version) +
                         " is not the supported version " +
                         std::to_string(kTraceFormatVersion));
  }
  if (stream_count == 0) {
    return reader.At(serve::ErrorCode::kMalformedPayload, 0,
                     "trace header declares zero streams");
  }
  for (std::uint32_t s = 0; s < stream_count; ++s) {
    TraceStreamInfo stream;
    if (!payload.String(stream.name) || !payload.String(stream.domain) ||
        !payload.F64(stream.severity_hint)) {
      return reader.At(serve::ErrorCode::kMalformedPayload, 0,
                       "trace header stream table truncated at entry " +
                           std::to_string(s));
    }
    info.streams.push_back(std::move(stream));
  }
  if (!payload.AtEnd()) {
    return reader.At(serve::ErrorCode::kMalformedPayload, 0,
                     "trailing bytes after the trace header stream table");
  }
  if (info.records == 0 &&
      reader.bytes_.size() >
          net::FrameHeader::kBytes + frame.value().payload.size()) {
    return reader.At(serve::ErrorCode::kMalformedPayload, 0,
                     "header says zero records but data follows — the "
                     "recording was never finished");
  }
  reader.first_record_offset_ =
      net::FrameHeader::kBytes + frame.value().payload.size();
  reader.Rewind();
  return reader;
}

void TraceReader::Rewind() {
  offset_ = first_record_offset_;
  next_index_ = 0;
  examples_seen_ = 0;
}

serve::Result<std::optional<TraceRecord>> TraceReader::Next() {
  if (next_index_ == info_.records) {
    if (offset_ != bytes_.size()) {
      return At(serve::ErrorCode::kMalformedPayload, offset_,
                "trailing bytes after the final declared record");
    }
    if (examples_seen_ != info_.examples) {
      return At(serve::ErrorCode::kMalformedPayload, offset_,
                "records carry " + std::to_string(examples_seen_) +
                    " examples but the header declared " +
                    std::to_string(info_.examples));
    }
    return std::optional<TraceRecord>{};
  }
  if (offset_ >= bytes_.size()) {
    return At(serve::ErrorCode::kTruncatedFrame, offset_,
              "trace ends after " + std::to_string(next_index_) + " of " +
                  std::to_string(info_.records) + " declared records");
  }
  serve::Result<net::Frame> frame = net::DecodeFrame(
      std::span<const std::uint8_t>(bytes_).subspan(offset_));
  if (!frame.ok()) {
    return At(frame.code(), offset_,
              "record " + std::to_string(next_index_) + ": " +
                  frame.error().message);
  }
  const net::FrameHeader& header = frame.value().header;
  if (header.type != net::FrameType::kData) {
    return At(serve::ErrorCode::kMalformedPayload, offset_,
              "record " + std::to_string(next_index_) + " is a '" +
                  std::string(net::FrameTypeName(header.type)) +
                  "' frame, not data");
  }
  if (header.seq != next_index_) {
    return At(serve::ErrorCode::kMalformedPayload, offset_,
              "record sequence " + std::to_string(header.seq) +
                  " where " + std::to_string(next_index_) +
                  " was expected");
  }
  if (header.stream >= info_.streams.size()) {
    return At(serve::ErrorCode::kMalformedPayload, offset_,
              "record stream index " + std::to_string(header.stream) +
                  " is outside the " +
                  std::to_string(info_.streams.size()) +
                  "-entry stream table");
  }
  const TraceStreamInfo& stream =
      info_.streams[static_cast<std::size_t>(header.stream)];
  if (header.domain_tag() != stream.domain) {
    return At(serve::ErrorCode::kMalformedPayload, offset_,
              "record domain '" + std::string(header.domain_tag()) +
                  "' does not match stream '" + stream.name +
                  "' domain '" + stream.domain + "'");
  }
  TraceRecord record;
  record.index = next_index_;
  record.delta_ns = header.session;
  record.stream = static_cast<std::uint32_t>(header.stream);
  record.count = header.count;
  record.hint = header.hint();
  record.payload = std::move(frame.value().payload);
  offset_ += net::FrameHeader::kBytes + header.payload_length;
  ++next_index_;
  examples_seen_ += header.count;
  return std::optional<TraceRecord>(std::move(record));
}

}  // namespace omg::replay
