// On-disk example traces: the wire format, persisted.
//
// A trace file is a sequence of ordinary wire frames (net/wire.hpp, 64-byte
// CRC-guarded headers), so the reader inherits every corruption check the
// network path has — truncated headers, flipped header bytes, payload CRC
// mismatches — and the corrupt-frame test corpus exercises both paths.
//
//   frame 0            kTraceHeader: trace metadata (below)
//   frames 1..records  kData: one recorded batch each
//
// The kTraceHeader payload (WireWriter encoding):
//
//   u32  format version (kTraceFormatVersion)
//   str  scenario name
//   u64  scenario hash (FNV-1a 64 of the scenario config bytes)
//   u64  record count      ┐ patched in place by TraceWriter::Finish —
//   u64  total examples    ┘ zero while a recording is in progress
//   u32  stream count
//   per stream: str name, str domain, f64 severity_hint
//
// Each kData record frame reuses the wire header fields:
//
//   seq      record index (0-based, dense — readers verify)
//   session  inter-arrival delta to the previous record, nanoseconds
//   stream   index into the header's stream table
//   domain   the stream's domain tag (redundant; readers verify)
//   count    examples in the batch
//   hint     admission severity hint
//   payload  the domain codec's batch encoding (net/codec.hpp)
//
// Inter-arrival deltas are *synthetic* at record time (derived from the
// [replay] record_eps rate, not the wall clock) so recording the same
// scenario twice produces byte-identical files. Replay multiplies them by
// 1/speed; see replay.hpp.
//
// All reader errors are positioned: the message names the byte offset of
// the frame that failed, so a truncated or bit-flipped trace is
// diagnosable without a hex dump.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/wire.hpp"
#include "serve/result.hpp"

namespace omg::replay {

/// Trace payload-format version this build reads and writes.
inline constexpr std::uint32_t kTraceFormatVersion = 1;

/// FNV-1a 64-bit hash (offset basis 0xcbf29ce484222325, prime
/// 0x100000001b3) — the digest used for scenario hashes and golden flag
/// digests. Stable across platforms; not cryptographic.
std::uint64_t Fnv1a64(std::span<const std::uint8_t> bytes);
std::uint64_t Fnv1a64(std::string_view text);

/// FNV-1a 64 of a file's bytes (what TraceInfo::scenario_hash holds for
/// the scenario config); kIoError when the file cannot be read.
serve::Result<std::uint64_t> HashFile(const std::string& path);

/// One stream of the trace's stream table.
struct TraceStreamInfo {
  std::string name;
  std::string domain;
  double severity_hint = 0.0;
};

/// The kTraceHeader metadata.
struct TraceInfo {
  std::uint32_t format_version = kTraceFormatVersion;
  std::string scenario;            ///< [scenario] name
  std::uint64_t scenario_hash = 0; ///< FNV-1a 64 of the config file bytes
  std::uint64_t records = 0;       ///< kData frames following the header
  std::uint64_t examples = 0;      ///< total examples across all records
  std::vector<TraceStreamInfo> streams;
};

/// One recorded batch.
struct TraceRecord {
  std::uint64_t index = 0;     ///< dense 0-based position in the trace
  std::uint64_t delta_ns = 0;  ///< inter-arrival delta to the previous record
  std::uint32_t stream = 0;    ///< index into TraceInfo::streams
  std::uint32_t count = 0;     ///< examples in the payload
  double hint = 0.0;           ///< admission severity hint
  std::vector<std::uint8_t> payload;  ///< the domain codec's batch encoding
};

/// Streams batches into a trace file. Open -> Append... -> Finish;
/// destroying an unfinished writer leaves a file whose header says zero
/// records, which readers reject against the trailing data — a crashed
/// recording cannot masquerade as a complete trace.
class TraceWriter {
 public:
  TraceWriter(TraceWriter&&) = default;
  TraceWriter& operator=(TraceWriter&&) = default;

  /// Creates `path` (truncating) and writes the kTraceHeader frame.
  /// `info.records` / `info.examples` are ignored — Finish patches the
  /// real counts. kIoError when the file cannot be created.
  static serve::Result<TraceWriter> Open(const std::string& path,
                                         TraceInfo info);

  /// Appends one record frame. `stream` must index the stream table and
  /// `payload` must be the stream domain codec's encoding of `count`
  /// examples (kInvalidArgument otherwise; kIoError on write failure).
  serve::Result<bool> Append(std::uint32_t stream, std::uint64_t delta_ns,
                             std::uint32_t count, double hint,
                             std::span<const std::uint8_t> payload);

  /// Rewrites the header frame with the final record/example counts and
  /// closes the file. The header frame's size is count-independent, so
  /// the patch is an in-place overwrite at offset 0.
  serve::Result<bool> Finish();

  std::uint64_t records() const { return records_; }
  std::uint64_t examples() const { return examples_; }

 private:
  TraceWriter() = default;

  TraceInfo info_;
  std::ofstream out_;
  std::uint64_t records_ = 0;
  std::uint64_t examples_ = 0;
  bool finished_ = false;
};

/// Decodes a trace file. The whole file is read into memory at Open (the
/// shipped traces are small; soak replays loop one in-memory trace), and
/// every decode error carries the failing frame's byte offset.
class TraceReader {
 public:
  TraceReader(TraceReader&&) = default;
  TraceReader& operator=(TraceReader&&) = default;

  /// Reads `path` and decodes + validates the kTraceHeader frame. Typed
  /// errors: kIoError (unreadable), kTruncatedFrame / kBadMagic /
  /// kCrcMismatch / ... (wire-level, positioned), kMalformedPayload
  /// (header payload undecodable or version unsupported).
  static serve::Result<TraceReader> Open(const std::string& path);

  const TraceInfo& info() const { return info_; }

  /// Decodes the next record. Empty optional at a *clean* end of trace
  /// (exactly info().records records and info().examples examples seen,
  /// no trailing bytes); positioned typed errors otherwise, including
  /// kTruncatedFrame when the file ends early against the header's count.
  serve::Result<std::optional<TraceRecord>> Next();

  /// Rewinds to the first record (for multi-pass replays — soak loops).
  void Rewind();

  /// Byte offset the next frame decode starts at.
  std::size_t offset() const { return offset_; }

 private:
  TraceReader() = default;

  serve::Error At(serve::ErrorCode code, std::size_t offset,
                  const std::string& message) const;

  std::string path_;
  std::vector<std::uint8_t> bytes_;
  TraceInfo info_;
  std::size_t first_record_offset_ = 0;
  std::size_t offset_ = 0;
  std::uint64_t next_index_ = 0;
  std::uint64_t examples_seen_ = 0;
};

}  // namespace omg::replay
