#include "loop/round_scheduler.hpp"

#include <utility>

#include "bandit/bal.hpp"
#include "common/check.hpp"

namespace omg::loop {

using common::Check;

RoundScheduler::RoundScheduler(RoundConfig config,
                               std::shared_ptr<FlagStore> store,
                               std::unique_ptr<bandit::SelectionStrategy>
                                   strategy,
                               std::shared_ptr<LabelOracle> oracle,
                               RetrainWorker* retrain, std::uint64_t seed,
                               ConfidenceFn confidences)
    : config_(config),
      store_(std::move(store)),
      strategy_(std::move(strategy)),
      oracle_(std::move(oracle)),
      retrain_(retrain),
      confidences_(std::move(confidences)),
      rng_(seed) {
  Check(config_.budget >= 1, "round budget must be >= 1");
  Check(store_ != nullptr, "scheduler needs a flag store");
  Check(strategy_ != nullptr, "scheduler needs a selection strategy");
  Check(oracle_ != nullptr, "scheduler needs a label oracle");
}

RoundScheduler::~RoundScheduler() { Stop(); }

std::optional<RoundStats> RoundScheduler::RunRound() {
  MutexLock round_lock(round_mutex_);

  const FlagStore::Snapshot snapshot = store_->TakeSnapshot();
  if (snapshot.keys.size() < config_.min_candidates) return std::nullopt;
  OMG_TRACE(if (config_.tracer != nullptr) config_.tracer->EmitControl(
                obs::TraceEventKind::kRound, obs::TracePhase::kBegin,
                obs::TraceEvent::kNoStream, next_round_,
                snapshot.keys.size()));

  std::vector<double> confidences;
  if (confidences_) {
    confidences = confidences_(snapshot.keys);
    Check(confidences.size() == snapshot.keys.size(),
          "confidence provider returned wrong size");
  } else {
    confidences.assign(snapshot.keys.size(), 0.0);
  }

  bandit::RoundContext context;
  context.severities = &snapshot.severities;
  context.confidences = confidences;
  context.round = next_round_;
  // already_labeled stays empty: labeled candidates leave the store.

  RoundStats stats;
  stats.round = next_round_;
  stats.candidates = snapshot.keys.size();

  const std::vector<std::size_t> picked =
      strategy_->Select(context, config_.budget, rng_);
  ++next_round_;
  if (auto* bal = dynamic_cast<bandit::BalStrategy*>(strategy_.get())) {
    stats.used_fallback = bal->UsedFallback();
  }

  std::vector<CandidateKey> keys;
  keys.reserve(picked.size());
  for (const std::size_t index : picked) {
    common::CheckIndex(static_cast<std::ptrdiff_t>(index), 0,
                       static_cast<std::ptrdiff_t>(snapshot.keys.size()),
                       "strategy selected out-of-snapshot index");
    keys.push_back(snapshot.keys[index]);
  }
  stats.selected = keys.size();

  if (!keys.empty()) {
    LabelBatch batch = oracle_->Label(keys);
    stats.human_labels = batch.human_labels;
    stats.weak_labels = batch.weak_labels;
    stats.labeled_rows = batch.data.size();
    store_->Remove(keys);
    if (retrain_ != nullptr && !batch.data.empty()) {
      retrain_->Submit(std::move(batch.data));
    }
  }

  {
    MutexLock history_lock(history_mutex_);
    history_.push_back(stats);
  }
  OMG_TRACE(if (config_.tracer != nullptr) config_.tracer->EmitControl(
                obs::TraceEventKind::kRound, obs::TracePhase::kEnd,
                obs::TraceEvent::kNoStream, stats.round, stats.labeled_rows));
  return stats;
}

void RoundScheduler::Start(std::chrono::milliseconds interval) {
  Check(interval.count() > 0, "round interval must be positive");
  Check(!timer_.joinable(), "scheduler timer already running");
  {
    MutexLock lock(timer_mutex_);
    timer_stop_ = false;
  }
  timer_ = std::thread([this, interval] {
    MutexLock lock(timer_mutex_);
    for (;;) {
      // Bounded wait: Stop() notifies under the mutex, so a stop is seen
      // either here or on the re-check. A spurious wake before the
      // deadline restarts the interval, which only jitters the timer.
      const std::cv_status status = timer_cv_.WaitFor(timer_mutex_, interval);
      if (timer_stop_) return;
      if (status == std::cv_status::no_timeout) continue;  // spurious wake
      lock.Unlock();
      // A throwing oracle/strategy/confidence-fn must not escape the
      // thread (std::terminate); record it and keep the loop alive.
      try {
        RunRound();
      } catch (const std::exception& error) {
        MutexLock history_lock(history_mutex_);
        errors_.push_back(error.what());
      }
      lock.Lock();
    }
  });
}

void RoundScheduler::Stop() {
  {
    MutexLock lock(timer_mutex_);
    timer_stop_ = true;
  }
  timer_cv_.NotifyAll();
  if (timer_.joinable()) timer_.join();
}

std::vector<RoundStats> RoundScheduler::History() const {
  MutexLock lock(history_mutex_);
  return history_;
}

std::vector<std::string> RoundScheduler::Errors() const {
  MutexLock lock(history_mutex_);
  return errors_;
}

}  // namespace omg::loop
