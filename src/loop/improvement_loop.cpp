#include "loop/improvement_loop.hpp"

#include <utility>

#include "common/check.hpp"

namespace omg::loop {

using common::Check;

ImprovementLoop::ImprovementLoop(
    ImprovementLoopConfig config,
    std::unique_ptr<bandit::SelectionStrategy> strategy,
    std::shared_ptr<LabelOracle> oracle, nn::Mlp initial_model,
    nn::Dataset replay, RoundScheduler::ConfidenceFn confidences) {
  Check(!config.assertion_names.empty(),
        "improvement loop needs at least one assertion name");
  FlagStoreConfig store_config = config.store;
  store_config.num_assertions = config.assertion_names.size();
  if (config.tracer != nullptr) {
    config.round.tracer = config.tracer;
    config.retrain.tracer = config.tracer;
  }

  registry_ = std::make_shared<ModelRegistry>();
  // Attach before the first Publish so even the pretrained model's
  // publication appears in the trace.
  registry_->AttachTracer(config.tracer);
  registry_->Publish(std::move(initial_model));
  store_ = std::make_shared<FlagStore>(store_config);
  sink_ = std::make_shared<FlagCollectorSink>(store_,
                                              config.assertion_names);
  retrain_ = std::make_unique<RetrainWorker>(config.retrain, registry_,
                                             std::move(replay));
  scheduler_ = std::make_unique<RoundScheduler>(
      config.round, store_, std::move(strategy), std::move(oracle),
      retrain_.get(), config.seed, std::move(confidences));
}

}  // namespace omg::loop
