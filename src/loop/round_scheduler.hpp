// Live bandit rounds over the FlagStore.
//
// Algorithm 2 was written for bulk rounds over a fixed benchmark pool; here
// each round's pool is whatever the runtime flagged recently. The scheduler
// snapshots the store into a bandit::RoundContext, runs any
// SelectionStrategy over it (BAL with fallback, uncertainty, random — the
// strategies are reused unchanged), dispatches the selections to a
// LabelOracle, drops the labeled candidates from the store, and hands the
// labeled rows to the RetrainWorker. Rounds run on demand (RunRound) or on a
// timer thread (Start/Stop).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bandit/strategy.hpp"
#include "common/mutex.hpp"
#include "common/rng.hpp"
#include "loop/flag_store.hpp"
#include "loop/oracle.hpp"
#include "loop/retrain_worker.hpp"
#include "obs/tracer.hpp"

namespace omg::loop {

/// Round parameters.
struct RoundConfig {
  /// Labels spent per round (the paper's per-round budget).
  std::size_t budget = 8;
  /// Rounds with fewer candidates are skipped (nothing worth labeling yet).
  std::size_t min_candidates = 1;
  /// Optional trace sink: each executed round emits a `round` span on the
  /// control lane (begin: candidates; end: labeled rows).
  std::shared_ptr<obs::Tracer> tracer;
};

/// What one round did; History() keeps these in order.
struct RoundStats {
  std::size_t round = 0;
  std::size_t candidates = 0;   ///< store size at snapshot time
  std::size_t selected = 0;     ///< candidates picked by the strategy
  std::size_t human_labels = 0; ///< full-weight rows produced
  std::size_t weak_labels = 0;  ///< down-weighted rows produced
  std::size_t labeled_rows = 0; ///< total rows submitted for retraining
  bool used_fallback = false;   ///< BAL fell back to its baseline
};

/// Drives select -> label -> retrain rounds against live flagged traffic.
class RoundScheduler {
 public:
  /// Optional per-candidate model-confidence provider; required by
  /// confidence-based strategies (uncertainty, BAL with an uncertainty
  /// fallback). When absent, confidences are reported as zero.
  using ConfidenceFn =
      std::function<std::vector<double>(std::span<const CandidateKey>)>;

  /// `retrain` may be null — a loop that only measures selection (the
  /// no-retrain control arm of bench_loop_convergence) skips training.
  RoundScheduler(RoundConfig config, std::shared_ptr<FlagStore> store,
                 std::unique_ptr<bandit::SelectionStrategy> strategy,
                 std::shared_ptr<LabelOracle> oracle, RetrainWorker* retrain,
                 std::uint64_t seed, ConfidenceFn confidences = {});

  ~RoundScheduler();

  RoundScheduler(const RoundScheduler&) = delete;
  RoundScheduler& operator=(const RoundScheduler&) = delete;

  /// Runs one round synchronously. Returns nullopt when the store held
  /// fewer than `min_candidates` candidates (the round is not counted).
  /// Thread-safe; concurrent calls (timer + manual) serialise.
  std::optional<RoundStats> RunRound();

  /// Starts a timer thread running a round every `interval`.
  void Start(std::chrono::milliseconds interval);

  /// Stops the timer thread (idempotent; the destructor also stops it).
  void Stop();

  /// Completed rounds, in order.
  std::vector<RoundStats> History() const;

  /// Messages from timer-thread rounds that threw (a throwing oracle or
  /// strategy poisons its round, not the process).
  std::vector<std::string> Errors() const;

  /// The strategy rounds run (exposed for per-round inspection in benches).
  bandit::SelectionStrategy& strategy() { return *strategy_; }
  /// The round parameters this scheduler was built with.
  const RoundConfig& config() const { return config_; }

 private:
  RoundConfig config_;
  std::shared_ptr<FlagStore> store_;
  std::unique_ptr<bandit::SelectionStrategy> strategy_;
  std::shared_ptr<LabelOracle> oracle_;
  RetrainWorker* retrain_;
  ConfidenceFn confidences_;

  Mutex round_mutex_;  ///< serialises rounds
  common::Rng rng_ OMG_GUARDED_BY(round_mutex_);
  std::size_t next_round_ OMG_GUARDED_BY(round_mutex_) = 0;

  mutable Mutex history_mutex_;
  std::vector<RoundStats> history_ OMG_GUARDED_BY(history_mutex_);
  std::vector<std::string> errors_ OMG_GUARDED_BY(history_mutex_);

  Mutex timer_mutex_;
  CondVar timer_cv_;
  bool timer_stop_ OMG_GUARDED_BY(timer_mutex_) = false;
  std::thread timer_;
};

}  // namespace omg::loop
