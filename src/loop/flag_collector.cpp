#include "loop/flag_collector.hpp"

#include <cmath>
#include <utility>

#include "common/check.hpp"

namespace omg::loop {

using common::Check;

FlagCollectorSink::FlagCollectorSink(std::shared_ptr<FlagStore> store,
                                     std::vector<std::string> assertion_names,
                                     FlagCollectorConfig config)
    : store_(std::move(store)),
      names_(std::move(assertion_names)),
      config_(config) {
  Check(store_ != nullptr, "flag collector needs a store");
  Check(names_.size() == store_->config().num_assertions,
        "assertion name count must match the store's column count");
  Check(std::isfinite(config_.min_severity) && config_.min_severity >= 0.0,
        "flag collector min_severity must be finite and >= 0");
  for (std::size_t column = 0; column < names_.size(); ++column) {
    const auto [it, inserted] = columns_.emplace(names_[column], column);
    Check(inserted, "duplicate assertion name: " + names_[column]);
  }
}

void FlagCollectorSink::Consume(const runtime::StreamEvent& event) {
  consumed_.fetch_add(1, std::memory_order_relaxed);
  const auto it = columns_.find(event.assertion);
  if (it == columns_.end()) {
    unknown_events_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (event.severity < config_.min_severity) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  store_->Record({event.stream_id, event.example_index}, it->second,
                 event.severity);
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t FlagCollectorSink::consumed() const {
  return consumed_.load(std::memory_order_relaxed);
}

std::size_t FlagCollectorSink::recorded() const {
  return recorded_.load(std::memory_order_relaxed);
}

std::size_t FlagCollectorSink::shed_low_severity() const {
  return shed_.load(std::memory_order_relaxed);
}

std::size_t FlagCollectorSink::unknown_events() const {
  return unknown_events_.load(std::memory_order_relaxed);
}

}  // namespace omg::loop
