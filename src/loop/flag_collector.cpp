#include "loop/flag_collector.hpp"

#include <utility>

#include "common/check.hpp"

namespace omg::loop {

using common::Check;

FlagCollectorSink::FlagCollectorSink(std::shared_ptr<FlagStore> store,
                                     std::vector<std::string> assertion_names)
    : store_(std::move(store)), names_(std::move(assertion_names)) {
  Check(store_ != nullptr, "flag collector needs a store");
  Check(names_.size() == store_->config().num_assertions,
        "assertion name count must match the store's column count");
  for (std::size_t column = 0; column < names_.size(); ++column) {
    const auto [it, inserted] = columns_.emplace(names_[column], column);
    Check(inserted, "duplicate assertion name: " + names_[column]);
  }
}

void FlagCollectorSink::Consume(const runtime::StreamEvent& event) {
  const auto it = columns_.find(event.assertion);
  if (it == columns_.end()) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++unknown_events_;
    return;
  }
  store_->Record({event.stream_id, event.example_index}, it->second,
                 event.severity);
}

std::size_t FlagCollectorSink::unknown_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return unknown_events_;
}

}  // namespace omg::loop
