// Labeling oracles: how selected candidates become training rows.
//
// The paper uses two label sources — humans (§3, §5.3: the active-learning
// budget) and the consistency API's corrections (§4.2, §5.5: weak labels,
// down-weighted relative to human ones). The loop treats both behind one
// interface so a RoundScheduler can dispatch BAL's selections to either, or
// to a mix of the two (Table 6 combines them).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <string>

#include "loop/flag_store.hpp"
#include "nn/trainer.hpp"

namespace omg::loop {

/// Training rows produced by labeling one round's selections.
struct LabelBatch {
  /// The labeled rows (weights already applied).
  nn::Dataset data;
  /// Rows carrying full-weight (human / ground-truth) labels.
  std::size_t human_labels = 0;
  /// Rows carrying down-weighted weak labels.
  std::size_t weak_labels = 0;
};

/// Turns selected candidates into labeled training data.
///
/// Implementations may be called from the scheduler's timer thread; they
/// must not assume the caller's thread identity but are never called
/// concurrently with themselves (rounds are serialised).
class LabelOracle {
 public:
  virtual ~LabelOracle() = default;

  /// Display name ("ground-truth", "weak-consistency", "mixed", ...).
  virtual std::string Name() const = 0;

  virtual LabelBatch Label(std::span<const CandidateKey> keys) = 0;
};

/// Simulation stand-in for the human labeler: resolves each candidate to
/// ground truth through a domain callback (e.g. NightStreetWorld::LabelFrame
/// on the retained frame the key points at).
class GroundTruthOracle final : public LabelOracle {
 public:
  /// Resolves one candidate to its ground-truth training rows.
  using LabelFn = std::function<nn::Dataset(const CandidateKey&)>;

  /// `label` must be non-null.
  explicit GroundTruthOracle(LabelFn label);

  std::string Name() const override { return "ground-truth"; }
  LabelBatch Label(std::span<const CandidateKey> keys) override;

 private:
  LabelFn label_;
};

/// Weak labels from consistency corrections (§4.2), down-weighted.
///
/// `propose` is expected to run the domain's core::ConsistencyEngine over
/// the retained traffic and materialise the corrections touching the given
/// candidates into training rows (see video::MakeWeakLabelDataset); the
/// oracle then scales every row's weight by `weak_weight`, which is how the
/// paper keeps weak labels from overpowering human ones.
class WeakLabelOracle final : public LabelOracle {
 public:
  /// Materialises the corrections touching the given candidates into rows.
  using ProposeFn = std::function<nn::Dataset(std::span<const CandidateKey>)>;

  /// `propose` must be non-null; `weak_weight` in (0, 1].
  WeakLabelOracle(ProposeFn propose, double weak_weight);

  std::string Name() const override { return "weak-consistency"; }
  LabelBatch Label(std::span<const CandidateKey> keys) override;

  /// The weight every proposed row is scaled by.
  double weak_weight() const { return weak_weight_; }

 private:
  ProposeFn propose_;
  double weak_weight_;
};

/// Human + weak labels on the same selections (the Table 6 mix): the primary
/// oracle's rows and the secondary's are concatenated into one batch.
class MixedOracle final : public LabelOracle {
 public:
  /// Both oracles must be non-null; each round labels through both.
  MixedOracle(std::shared_ptr<LabelOracle> primary,
              std::shared_ptr<LabelOracle> secondary);

  std::string Name() const override;
  LabelBatch Label(std::span<const CandidateKey> keys) override;

 private:
  std::shared_ptr<LabelOracle> primary_;
  std::shared_ptr<LabelOracle> secondary_;
};

}  // namespace omg::loop
