#include "loop/retrain_worker.hpp"

#include <utility>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace omg::loop {

using common::Check;

RetrainWorker::RetrainWorker(RetrainConfig config,
                             std::shared_ptr<ModelRegistry> registry,
                             nn::Dataset replay)
    : config_(std::move(config)), registry_(std::move(registry)) {
  Check(registry_ != nullptr, "retrain worker needs a registry");
  Check(registry_->version() >= 1,
        "registry must hold the pretrained model before retraining starts");
  if (config_.replay_weight > 0.0) {
    for (std::size_t i = 0; i < replay.size(); ++i) {
      const double weight =
          replay.weights.empty() ? 1.0 : replay.weights[i];
      replay_.Add(replay.features[i], replay.labels[i],
                  weight * config_.replay_weight);
    }
  }
  worker_ = std::thread([this] { Run(); });
}

RetrainWorker::~RetrainWorker() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  worker_.join();
}

void RetrainWorker::Submit(nn::Dataset labeled) {
  Check(!labeled.empty(), "submitted label batch is empty");
  {
    MutexLock lock(mutex_);
    pending_.push_back(std::move(labeled));
  }
  work_cv_.NotifyOne();
}

void RetrainWorker::WaitIdle() {
  MutexLock lock(mutex_);
  while (!pending_.empty() || training_) idle_cv_.Wait(mutex_);
}

std::size_t RetrainWorker::retrains() const {
  MutexLock lock(mutex_);
  return retrains_;
}

std::size_t RetrainWorker::accumulated_rows() const {
  MutexLock lock(mutex_);
  return accumulated_.size();
}

std::vector<std::string> RetrainWorker::Errors() const {
  MutexLock lock(mutex_);
  return errors_;
}

void RetrainWorker::Run() {
  common::Rng rng(config_.seed);
  for (;;) {
    nn::Dataset snapshot;
    {
      MutexLock lock(mutex_);
      while (!stop_ && pending_.empty()) work_cv_.Wait(mutex_);
      if (pending_.empty()) break;  // stop_ with nothing left to train
      for (nn::Dataset& batch : pending_) accumulated_.Append(batch);
      pending_.clear();
      training_ = true;
      snapshot = accumulated_;  // train outside the lock on a copy
    }
    if (config_.on_retrain_start) config_.on_retrain_start();
    OMG_TRACE(if (config_.tracer != nullptr) config_.tracer->EmitControl(
                  obs::TraceEventKind::kRetrain, obs::TracePhase::kBegin,
                  obs::TraceEvent::kNoStream, snapshot.size()));
    [[maybe_unused]] std::uint64_t published_version = 0;

    // Clone the currently served model and fine-tune the clone; serving
    // keeps reading the old handle until the publish below. A throwing
    // fine-tune (e.g. a feature-dimension mismatch in a labeled row) must
    // not escape the thread: record it and keep the worker alive.
    try {
      nn::Mlp model = *registry_->Current().model;
      nn::Dataset combined = replay_;
      combined.Append(snapshot);
      nn::SoftmaxTrainer trainer(config_.sgd);
      trainer.Train(model, combined, rng);
      published_version = registry_->Publish(std::move(model));
      MutexLock lock(mutex_);
      training_ = false;
      ++retrains_;
    } catch (const std::exception& error) {
      MutexLock lock(mutex_);
      training_ = false;
      errors_.push_back(error.what());
    }
    OMG_TRACE(if (config_.tracer != nullptr) config_.tracer->EmitControl(
                  obs::TraceEventKind::kRetrain, obs::TracePhase::kEnd,
                  obs::TraceEvent::kNoStream, snapshot.size(),
                  published_version));
    idle_cv_.NotifyAll();
  }
}

}  // namespace omg::loop
