// Background fine-tuning with hot-swapped publishes.
//
// Labeled batches from the RoundScheduler accumulate into one weighted
// dataset (weak labels keep their down-weights next to full-weight human
// labels, as §5.5 prescribes); a dedicated worker thread clones the
// registry's current model, fine-tunes the clone on replay + accumulated
// labels, and publishes the result as a new version. Serving never blocks:
// streams keep scoring with the old handle until they pick up the new one
// between batches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "loop/model_registry.hpp"
#include "nn/trainer.hpp"
#include "obs/tracer.hpp"

namespace omg::loop {

/// RetrainWorker parameters.
struct RetrainConfig {
  /// Fine-tune hyper-parameters (domains pass their finetune_sgd here).
  nn::SgdConfig sgd{0.02, 0.9, 1e-4, 32, 8};
  /// Weight at which the replay dataset (typically the pretraining set) is
  /// mixed into every fine-tune so new labels shift the model without
  /// erasing it; <= 0 disables replay even when a replay set was given.
  double replay_weight = 0.5;
  std::uint64_t seed = 42;
  /// Invoked on the worker thread when a fine-tune begins (instrumentation;
  /// tests use it to pin down hot-swap interleavings).
  std::function<void()> on_retrain_start;
  /// Optional trace sink: each fine-tune emits a `retrain` span on the
  /// control lane (begin: accumulated rows; end: published version, 0 when
  /// the fine-tune threw).
  std::shared_ptr<obs::Tracer> tracer;
};

/// Accumulates labeled data and retrains on a background thread.
///
/// Submit() never blocks on training. Consecutive submissions arriving while
/// a fine-tune is in flight coalesce into the next one. All public methods
/// are thread-safe.
class RetrainWorker {
 public:
  /// `registry` must already hold a published model (the pretrained one);
  /// every fine-tune starts from the registry's current version.
  RetrainWorker(RetrainConfig config, std::shared_ptr<ModelRegistry> registry,
                nn::Dataset replay = {});

  /// Drains pending work (finishing any in-flight fine-tune) and joins.
  ~RetrainWorker();

  RetrainWorker(const RetrainWorker&) = delete;
  RetrainWorker& operator=(const RetrainWorker&) = delete;

  /// Enqueues one round's labeled rows; wakes the worker.
  void Submit(nn::Dataset labeled);

  /// Blocks until every submitted batch has been trained and published.
  void WaitIdle();

  /// Completed fine-tune/publish cycles.
  std::size_t retrains() const;

  /// Rows in the accumulated labeled dataset (excludes replay).
  std::size_t accumulated_rows() const;

  /// Messages from fine-tunes that threw (a bad labeled row poisons its
  /// retrain, not the worker thread or the process).
  std::vector<std::string> Errors() const;

 private:
  void Run();

  RetrainConfig config_;
  std::shared_ptr<ModelRegistry> registry_;
  nn::Dataset replay_;  ///< already scaled by replay_weight

  mutable Mutex mutex_;
  CondVar work_cv_;
  CondVar idle_cv_;
  std::vector<nn::Dataset> pending_ OMG_GUARDED_BY(mutex_);
  nn::Dataset accumulated_ OMG_GUARDED_BY(mutex_);
  bool training_ OMG_GUARDED_BY(mutex_) = false;
  bool stop_ OMG_GUARDED_BY(mutex_) = false;
  std::size_t retrains_ OMG_GUARDED_BY(mutex_) = 0;
  std::vector<std::string> errors_ OMG_GUARDED_BY(mutex_);

  std::thread worker_;  // declared last: joined before state dies
};

}  // namespace omg::loop
