// Versioned, hot-swappable model handles.
//
// The retraining side of the loop publishes fine-tuned models here; the
// serving side reads the current handle between batches and keeps scoring —
// no pause, no flush. Handles are shared_ptr<const Mlp>, so a worker that
// picked up version v keeps a consistent model for the whole batch even if
// v+1 is published mid-batch, and old versions die when their last reader
// drops them.
#pragma once

#include <cstdint>
#include <memory>

#include "common/mutex.hpp"
#include "nn/mlp.hpp"
#include "obs/tracer.hpp"

namespace omg::loop {

/// One published model version. `version` starts at 1 for the first publish;
/// a default-constructed handle (version 0, null model) means "none yet".
struct ModelHandle {
  /// Monotonically increasing publish number (0 = none yet).
  std::uint64_t version = 0;
  /// The published model; null while version is 0.
  std::shared_ptr<const nn::Mlp> model;
};

/// Thread-safe registry of the currently served model.
class ModelRegistry {
 public:
  /// Publishes `model` as the new current version and returns its number.
  /// Atomic with respect to Current(): readers see either the old or the
  /// new handle, never a torn state.
  std::uint64_t Publish(nn::Mlp model);

  /// The latest published handle (version 0 / null before any publish).
  ModelHandle Current() const;

  /// Version of the latest publish (0 before any).
  std::uint64_t version() const;

  /// Emits a model_hot_swap trace event (control lane) on every Publish.
  /// Thread-safe; null detaches.
  void AttachTracer(std::shared_ptr<obs::Tracer> tracer);

 private:
  mutable Mutex mutex_;
  ModelHandle current_ OMG_GUARDED_BY(mutex_);
  std::shared_ptr<obs::Tracer> tracer_ OMG_GUARDED_BY(mutex_);
};

}  // namespace omg::loop
