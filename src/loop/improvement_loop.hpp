// The online continuous-improvement loop — the paper's Figure-1 cycle as a
// serving-scale subsystem.
//
//           ┌──────────────────────────────────────────────────┐
//           ▼                                                  │
//   MonitorService ──events──► FlagCollectorSink ──► FlagStore │
//   (runtime traffic)                                   │      │
//           ▲                              snapshot per round  │
//           │                                           ▼      │
//   ModelRegistry ◄──publish── RetrainWorker ◄── RoundScheduler┘
//   (hot-swapped versions)     (background      (SelectionStrategy
//                               fine-tune)       + LabelOracle)
//
// ImprovementLoop owns everything to the right of the service: plug sink()
// into a MonitorService, serve traffic scored with registry().Current(),
// and run rounds (manually or on a timer). Selected candidates are labeled
// by the oracle (human ground truth, consistency weak labels, or both),
// fine-tuned into a new model version on a background thread, and picked up
// by serving between batches — ingestion never pauses.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bandit/strategy.hpp"
#include "loop/flag_collector.hpp"
#include "loop/flag_store.hpp"
#include "loop/model_registry.hpp"
#include "loop/oracle.hpp"
#include "loop/retrain_worker.hpp"
#include "loop/round_scheduler.hpp"
#include "nn/mlp.hpp"

namespace omg::loop {

/// End-to-end loop parameters.
struct ImprovementLoopConfig {
  /// Assertion names in store-column order; must match the names the
  /// monitored suite emits (events with other names are ignored).
  std::vector<std::string> assertion_names;
  FlagStoreConfig store;   ///< num_assertions is derived from the names
  RoundConfig round;       ///< per-round budget and minimum pool size
  RetrainConfig retrain;   ///< fine-tune hyper-parameters
  std::uint64_t seed = 42; ///< seeds the scheduler's tie-breaking RNG
  /// Optional trace sink shared with the serving runtime: propagated to the
  /// scheduler (round spans), the retrain worker (retrain spans), and the
  /// registry (model_hot_swap instants), all on the control lane. Overrides
  /// any tracer already set inside `round` / `retrain`.
  std::shared_ptr<obs::Tracer> tracer;
};

/// Facade wiring FlagStore + collector + scheduler + retrainer + registry.
class ImprovementLoop {
 public:
  /// `initial_model` becomes registry version 1 (the pretrained model).
  /// `replay` is mixed into every fine-tune at retrain.replay_weight.
  ImprovementLoop(ImprovementLoopConfig config,
                  std::unique_ptr<bandit::SelectionStrategy> strategy,
                  std::shared_ptr<LabelOracle> oracle, nn::Mlp initial_model,
                  nn::Dataset replay = {},
                  RoundScheduler::ConfidenceFn confidences = {});

  /// The EventSink to AddSink into the MonitorService serving the traffic.
  std::shared_ptr<runtime::EventSink> sink() const { return sink_; }

  /// The hot-swap registry serving reads its model handles from.
  ModelRegistry& registry() { return *registry_; }
  /// The live candidate pool the collector fills.
  FlagStore& store() { return *store_; }
  /// The round driver (manual RunRound or timer Start/Stop).
  RoundScheduler& scheduler() { return *scheduler_; }
  /// The background fine-tuner publishing new versions.
  RetrainWorker& retrainer() { return *retrain_; }

  /// One synchronous select -> label -> submit-for-retrain round.
  std::optional<RoundStats> RunRound() { return scheduler_->RunRound(); }

  /// Timer-driven rounds (Stop is implied by destruction).
  void Start(std::chrono::milliseconds interval) {
    scheduler_->Start(interval);
  }
  void Stop() { scheduler_->Stop(); }

  /// Blocks until every labeled batch has been trained and published.
  void WaitForRetrains() { retrain_->WaitIdle(); }

  std::vector<RoundStats> History() const { return scheduler_->History(); }

 private:
  // Destruction order matters (reverse of declaration): the scheduler stops
  // before the retrain worker it points at, which drains before the
  // registry/store die.
  std::shared_ptr<ModelRegistry> registry_;
  std::shared_ptr<FlagStore> store_;
  std::shared_ptr<FlagCollectorSink> sink_;
  std::unique_ptr<RetrainWorker> retrain_;
  std::unique_ptr<RoundScheduler> scheduler_;
};

}  // namespace omg::loop
