#include "loop/flag_store.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace omg::loop {

using common::Check;

FlagStore::FlagStore(FlagStoreConfig config) : config_(config) {
  Check(config_.capacity >= 1, "flag store capacity must be >= 1");
  Check(config_.num_assertions >= 1,
        "flag store needs at least one assertion column");
}

double FlagStore::RankOf(const std::vector<double>& severities) {
  return *std::max_element(severities.begin(), severities.end());
}

void FlagStore::Record(const CandidateKey& key, std::size_t column,
                       double severity) {
  common::CheckIndex(static_cast<std::ptrdiff_t>(column), 0,
                     static_cast<std::ptrdiff_t>(config_.num_assertions),
                     "flag store assertion column");
  common::CheckNonNegative(severity, "flag severity");
  MutexLock lock(mutex_);
  const auto it = candidates_.find(key);
  if (it != candidates_.end()) {
    const double old_rank = RankOf(it->second);
    it->second[column] = std::max(it->second[column], severity);
    const double new_rank = RankOf(it->second);
    if (new_rank != old_rank) {
      ranks_.erase({old_rank, key});
      ranks_.emplace(new_rank, key);
    }
    return;
  }
  if (candidates_.size() >= config_.capacity) {
    // Severity-rank eviction: the lowest-ranked incumbent makes room, unless
    // the newcomer itself ranks lowest, in which case it is dropped.
    const auto lowest = ranks_.begin();
    ++evictions_;
    if (severity <= lowest->first) return;
    candidates_.erase(lowest->second);
    ranks_.erase(lowest);
  }
  std::vector<double> severities(config_.num_assertions, core::kAbstain);
  severities[column] = severity;
  candidates_.emplace(key, std::move(severities));
  ranks_.emplace(severity, key);
  ++total_admitted_;
}

std::size_t FlagStore::size() const {
  MutexLock lock(mutex_);
  return candidates_.size();
}

std::size_t FlagStore::total_admitted() const {
  MutexLock lock(mutex_);
  return total_admitted_;
}

std::size_t FlagStore::evictions() const {
  MutexLock lock(mutex_);
  return evictions_;
}

FlagStore::Snapshot FlagStore::TakeSnapshot() const {
  MutexLock lock(mutex_);
  Snapshot snapshot;
  snapshot.keys.reserve(candidates_.size());
  snapshot.severities =
      core::SeverityMatrix(candidates_.size(), config_.num_assertions);
  std::size_t row = 0;
  for (const auto& [key, severities] : candidates_) {
    snapshot.keys.push_back(key);
    for (std::size_t a = 0; a < config_.num_assertions; ++a) {
      snapshot.severities.Set(row, a, severities[a]);
    }
    ++row;
  }
  return snapshot;
}

std::size_t FlagStore::Remove(std::span<const CandidateKey> keys) {
  MutexLock lock(mutex_);
  std::size_t removed = 0;
  for (const CandidateKey& key : keys) {
    const auto it = candidates_.find(key);
    if (it == candidates_.end()) continue;
    ranks_.erase({RankOf(it->second), key});
    candidates_.erase(it);
    ++removed;
  }
  return removed;
}

void FlagStore::Clear() {
  MutexLock lock(mutex_);
  candidates_.clear();
  ranks_.clear();
}

}  // namespace omg::loop
