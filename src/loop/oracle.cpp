#include "loop/oracle.hpp"

#include <utility>

#include "common/check.hpp"

namespace omg::loop {

using common::Check;

GroundTruthOracle::GroundTruthOracle(LabelFn label)
    : label_(std::move(label)) {
  Check(static_cast<bool>(label_), "ground-truth oracle needs a label fn");
}

LabelBatch GroundTruthOracle::Label(std::span<const CandidateKey> keys) {
  LabelBatch batch;
  for (const CandidateKey& key : keys) {
    batch.data.Append(label_(key));
  }
  batch.human_labels = batch.data.size();
  return batch;
}

WeakLabelOracle::WeakLabelOracle(ProposeFn propose, double weak_weight)
    : propose_(std::move(propose)), weak_weight_(weak_weight) {
  Check(static_cast<bool>(propose_), "weak oracle needs a propose fn");
  Check(weak_weight_ > 0.0 && weak_weight_ <= 1.0,
        "weak_weight must be in (0, 1]");
}

LabelBatch WeakLabelOracle::Label(std::span<const CandidateKey> keys) {
  LabelBatch batch;
  const nn::Dataset proposed = propose_(keys);
  for (std::size_t i = 0; i < proposed.size(); ++i) {
    const double weight =
        proposed.weights.empty() ? 1.0 : proposed.weights[i];
    batch.data.Add(proposed.features[i], proposed.labels[i],
                   weight * weak_weight_);
  }
  batch.weak_labels = batch.data.size();
  return batch;
}

MixedOracle::MixedOracle(std::shared_ptr<LabelOracle> primary,
                         std::shared_ptr<LabelOracle> secondary)
    : primary_(std::move(primary)), secondary_(std::move(secondary)) {
  Check(primary_ != nullptr && secondary_ != nullptr,
        "mixed oracle needs both oracles");
}

std::string MixedOracle::Name() const {
  return primary_->Name() + "+" + secondary_->Name();
}

LabelBatch MixedOracle::Label(std::span<const CandidateKey> keys) {
  LabelBatch batch = primary_->Label(keys);
  LabelBatch extra = secondary_->Label(keys);
  batch.data.Append(extra.data);
  batch.human_labels += extra.human_labels;
  batch.weak_labels += extra.weak_labels;
  return batch;
}

}  // namespace omg::loop
