// The candidate pool of the online improvement loop.
//
// The paper's Figure-1 cycle assumes "a set of data points has been
// collected" before each bandit round (§3); at serving scale that set is not
// a benchmark pool but whatever the runtime flagged recently. The FlagStore
// is that set: a thread-safe, capacity-bounded pool of flagged candidates
// fed by a FlagCollectorSink (flag_collector.hpp) hanging off the
// MonitorService, and snapshotted by the RoundScheduler into the
// bandit::RoundContext a SelectionStrategy expects.
//
// Capacity policy: when full, admission competes on severity rank — the
// candidate whose maximum per-assertion severity is lowest is evicted (or
// the newcomer is dropped if it ranks lowest). High-severity evidence is
// what BAL samples from, so that is what survives memory pressure.
#pragma once

#include <compare>
#include <cstddef>
#include <map>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include "common/mutex.hpp"
#include "core/severity_matrix.hpp"
#include "runtime/event_sink.hpp"

namespace omg::loop {

/// Identity of a flagged example: which stream, and which position on it.
/// The loop looks candidates up in the domain's retained traffic by this key
/// (LabelOracle implementations resolve it to frames / windows / features).
struct CandidateKey {
  runtime::StreamId stream_id = 0;
  std::size_t example_index = 0;

  friend auto operator<=>(const CandidateKey&, const CandidateKey&) = default;
};

/// FlagStore parameters.
struct FlagStoreConfig {
  /// Maximum number of candidates retained; beyond it, severity-rank
  /// eviction kicks in.
  std::size_t capacity = 512;
  /// Number of assertion columns (the suite size the collector listens to).
  std::size_t num_assertions = 0;
};

/// Thread-safe, capacity-bounded pool of flagged examples with per-assertion
/// severities. All methods may be called concurrently (the collector sink
/// records from shard workers while the scheduler snapshots).
class FlagStore {
 public:
  explicit FlagStore(FlagStoreConfig config);

  const FlagStoreConfig& config() const { return config_; }

  /// Records `severity` of assertion `column` on `key`. Severities of one
  /// candidate merge by max (an assertion can re-fire on the same example
  /// via late emission). New candidates are admitted subject to capacity.
  void Record(const CandidateKey& key, std::size_t column, double severity);

  /// Current number of candidates.
  std::size_t size() const;

  /// Distinct candidates ever admitted (including later-evicted ones).
  std::size_t total_admitted() const;

  /// Candidates dropped under capacity pressure (evicted incumbents plus
  /// rejected newcomers).
  std::size_t evictions() const;

  /// Point-in-time copy of the pool: `severities` row i is `keys[i]`'s
  /// severity vector — exactly the severity matrix / bandit context of §3,
  /// restricted to the flagged live traffic.
  struct Snapshot {
    std::vector<CandidateKey> keys;  ///< ascending key order
    core::SeverityMatrix severities;  ///< row i is keys[i]'s severity vector
  };
  Snapshot TakeSnapshot() const;

  /// Removes candidates (typically after they were labeled); unknown keys
  /// are ignored. Returns how many were present and removed.
  std::size_t Remove(std::span<const CandidateKey> keys);

  void Clear();

 private:
  /// Eviction rank of a candidate: its maximum severity across assertions.
  static double RankOf(const std::vector<double>& severities);

  FlagStoreConfig config_;
  mutable Mutex mutex_;
  std::map<CandidateKey, std::vector<double>> candidates_
      OMG_GUARDED_BY(mutex_);
  /// Secondary index ordered by (rank, key): begin() is the eviction
  /// victim, so admission under capacity pressure is O(log n) on the
  /// collector's hot path instead of a scan over the whole pool.
  std::set<std::pair<double, CandidateKey>> ranks_ OMG_GUARDED_BY(mutex_);
  std::size_t total_admitted_ OMG_GUARDED_BY(mutex_) = 0;
  std::size_t evictions_ OMG_GUARDED_BY(mutex_) = 0;
};

}  // namespace omg::loop
