#include "loop/model_registry.hpp"

#include <utility>

namespace omg::loop {

std::uint64_t ModelRegistry::Publish(nn::Mlp model) {
  auto shared = std::make_shared<const nn::Mlp>(std::move(model));
  std::lock_guard<std::mutex> lock(mutex_);
  current_.version += 1;
  current_.model = std::move(shared);
  return current_.version;
}

ModelHandle ModelRegistry::Current() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

std::uint64_t ModelRegistry::version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_.version;
}

}  // namespace omg::loop
