#include "loop/model_registry.hpp"

#include <utility>

namespace omg::loop {

std::uint64_t ModelRegistry::Publish(nn::Mlp model) {
  auto shared = std::make_shared<const nn::Mlp>(std::move(model));
  std::uint64_t version;
  [[maybe_unused]] std::shared_ptr<obs::Tracer> tracer;
  {
    MutexLock lock(mutex_);
    current_.version += 1;
    current_.model = std::move(shared);
    version = current_.version;
    tracer = tracer_;
  }
  OMG_TRACE(if (tracer != nullptr) tracer->EmitControl(
                obs::TraceEventKind::kModelHotSwap, obs::TracePhase::kInstant,
                obs::TraceEvent::kNoStream, version));
  return version;
}

ModelHandle ModelRegistry::Current() const {
  MutexLock lock(mutex_);
  return current_;
}

std::uint64_t ModelRegistry::version() const {
  MutexLock lock(mutex_);
  return current_.version;
}

void ModelRegistry::AttachTracer(std::shared_ptr<obs::Tracer> tracer) {
  MutexLock lock(mutex_);
  tracer_ = std::move(tracer);
}

}  // namespace omg::loop
