// EventSink bridging the serving runtime into the improvement loop.
//
// Plugged into a MonitorService or ShardedMonitorService via AddSink, the
// collector turns every assertion firing into a FlagStore record: the
// event's (stream, example) identity becomes the candidate key and the
// assertion name is mapped to its severity-matrix column. This is the arrow
// from "monitoring" to "improvement" in the paper's Figure 1, realised as a
// runtime component instead of an offline export.
//
// Overload safety: Consume runs on the serving shard workers, so it must
// never become the slow consumer that backs the whole service up. Every
// counter is an atomic (no collector-wide lock), the FlagStore behind it is
// capacity-bounded with O(log n) admission, and an optional `min_severity`
// floor sheds low-severity events before they reach the store — under
// admission-level shedding the loop keeps receiving exactly the
// high-severity evidence BAL samples from. The atomic counters reconcile:
// consumed() == recorded() + shed_low_severity() + unknown_events().
#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "loop/flag_store.hpp"
#include "runtime/event_sink.hpp"

namespace omg::loop {

/// FlagCollectorSink parameters.
struct FlagCollectorConfig {
  /// Events with severity strictly below this are counted as shed instead
  /// of recorded — the collector-level analogue of the runtime's
  /// ShedBelowSeverity admission policy. 0 records everything.
  double min_severity = 0.0;
};

/// Feeds runtime events into a FlagStore. Thread-safe and non-blocking
/// apart from the store's own bounded-work mutex (Consume is called from
/// shard workers concurrently; the store serialises internally).
class FlagCollectorSink final : public runtime::EventSink {
 public:
  /// `assertion_names` fixes the store's column order; events whose
  /// assertion is not listed are counted but not recorded (a service can
  /// host assertions the loop does not act on).
  FlagCollectorSink(std::shared_ptr<FlagStore> store,
                    std::vector<std::string> assertion_names,
                    FlagCollectorConfig config = {});

  /// Records the event into the store (or counts it as unknown / shed).
  void Consume(const runtime::StreamEvent& event) override;

  /// Events received, of any disposition.
  std::size_t consumed() const;

  /// Events recorded into the store.
  std::size_t recorded() const;

  /// Events below the min_severity floor, shed before the store.
  std::size_t shed_low_severity() const;

  /// Events whose assertion name had no registered column.
  std::size_t unknown_events() const;

  /// The column order the store was configured with.
  const std::vector<std::string>& assertion_names() const { return names_; }

  /// The collector's configuration.
  const FlagCollectorConfig& config() const { return config_; }

 private:
  std::shared_ptr<FlagStore> store_;
  std::vector<std::string> names_;
  FlagCollectorConfig config_;
  std::map<std::string, std::size_t, std::less<>> columns_;
  std::atomic<std::size_t> consumed_{0};
  std::atomic<std::size_t> recorded_{0};
  std::atomic<std::size_t> shed_{0};
  std::atomic<std::size_t> unknown_events_{0};
};

}  // namespace omg::loop
