// EventSink bridging the serving runtime into the improvement loop.
//
// Plugged into a MonitorService via AddSink, the collector turns every
// assertion firing into a FlagStore record: the event's (stream, example)
// identity becomes the candidate key and the assertion name is mapped to its
// severity-matrix column. This is the arrow from "monitoring" to
// "improvement" in the paper's Figure 1, realised as a runtime component
// instead of an offline export.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "loop/flag_store.hpp"
#include "runtime/event_sink.hpp"

namespace omg::loop {

/// Feeds runtime events into a FlagStore. Thread-safe (Consume is called
/// from shard workers concurrently; the store serialises internally).
class FlagCollectorSink final : public runtime::EventSink {
 public:
  /// `assertion_names` fixes the store's column order; events whose
  /// assertion is not listed are counted but not recorded (a service can
  /// host assertions the loop does not act on).
  FlagCollectorSink(std::shared_ptr<FlagStore> store,
                    std::vector<std::string> assertion_names);

  void Consume(const runtime::StreamEvent& event) override;

  /// Events whose assertion name had no registered column.
  std::size_t unknown_events() const;

  const std::vector<std::string>& assertion_names() const { return names_; }

 private:
  std::shared_ptr<FlagStore> store_;
  std::vector<std::string> names_;
  std::map<std::string, std::size_t, std::less<>> columns_;
  mutable std::mutex mutex_;
  std::size_t unknown_events_ = 0;
};

}  // namespace omg::loop
