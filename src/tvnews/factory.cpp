#include "tvnews/factory.hpp"

#include <span>

#include "core/consistency.hpp"
#include "core/consistency_adapter.hpp"

namespace omg::tvnews {

void RegisterNewsAssertions(config::AssertionFactory<NewsFrame>& factory) {
  factory.Register(
      "tvnews.consistency",
      "identity/gender/hair of faces sharing a desk slot within one scene "
      "must be consistent (Id = scene + quantised box centre)",
      {{"attributes", config::ParamType::kStringList,
        "[identity, gender, hair]",
        "face attributes checked for per-identifier consistency"},
       {"temporal_threshold", config::ParamType::kDouble, "0.0",
        "T in seconds; 0 disables flicker/appear (scene cuts are hard "
        "boundaries)"}},
      [](const config::SpecSection& params,
         config::AssertionFactory<NewsFrame>::BuildContext& context) {
        core::ConsistencyConfig consistency;
        consistency.attribute_keys = params.GetStringList(
            "attributes", {"identity", "gender", "hair"});
        consistency.temporal_threshold =
            params.GetDouble("temporal_threshold", 0.0);
        auto analyzer = core::AddConsistencyAssertion<NewsFrame>(
            context.suite, consistency,
            [](std::span<const NewsFrame> examples) {
              return ExtractNewsRecords(examples);
            });
        context.invalidators.push_back([analyzer] { analyzer->Invalidate(); });
      });
}

}  // namespace omg::tvnews
