#include "tvnews/factory.hpp"

#include <memory>
#include <ostream>
#include <span>
#include <utility>

#include "common/table.hpp"
#include "core/consistency.hpp"
#include "core/consistency_adapter.hpp"
#include "serve/domains.hpp"

namespace omg::serve {

double DomainTraits<tvnews::NewsFrame>::SeverityHint(
    const tvnews::NewsFrame& frame) {
  return static_cast<double>(frame.faces.size());
}

std::string DomainTraits<tvnews::NewsFrame>::DebugString(
    const tvnews::NewsFrame& frame) {
  return "tvnews frame " + std::to_string(frame.index) + " @" +
         common::FormatDouble(frame.timestamp, 1) + "s, scene " +
         std::to_string(frame.scene_id) + ", " +
         std::to_string(frame.faces.size()) + " faces";
}

}  // namespace omg::serve

namespace omg::tvnews {

void RegisterNewsAssertions(config::AssertionFactory<NewsFrame>& factory) {
  factory.Register(
      "tvnews.consistency",
      "identity/gender/hair of faces sharing a desk slot within one scene "
      "must be consistent (Id = scene + quantised box centre)",
      {{"attributes", config::ParamType::kStringList,
        "[identity, gender, hair]",
        "face attributes checked for per-identifier consistency"},
       {"temporal_threshold", config::ParamType::kDouble, "0.0",
        "T in seconds; 0 disables flicker/appear (scene cuts are hard "
        "boundaries)"}},
      [](const config::SpecSection& params,
         config::AssertionFactory<NewsFrame>::BuildContext& context) {
        core::ConsistencyConfig consistency;
        consistency.attribute_keys = params.GetStringList(
            "attributes", {"identity", "gender", "hair"});
        consistency.temporal_threshold =
            params.GetDouble("temporal_threshold", 0.0);
        auto analyzer = core::AddConsistencyAssertion<NewsFrame>(
            context.suite, consistency,
            [](std::span<const NewsFrame> examples) {
              return ExtractNewsRecords(examples);
            });
        context.invalidators.push_back([analyzer] { analyzer->Invalidate(); });
      });
}

void RegisterNewsDomain(serve::DomainRegistry& registry) {
  serve::RegisterDomain<NewsFrame>(registry, "tvnews",
                                  &RegisterNewsAssertions);
}

}  // namespace omg::tvnews
