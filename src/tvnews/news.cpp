#include "tvnews/news.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.hpp"

namespace omg::tvnews {

using common::Check;

namespace {

constexpr double kSlotWidth = 220.0;  // desk-anchor quantisation, pixels

const char* const kGenders[] = {"female", "male"};
const char* const kHairColors[] = {"black", "blond", "brown", "gray"};

std::string SlotIdentifier(std::int64_t scene_id,
                           const geometry::Box2D& box) {
  const auto slot = static_cast<std::int64_t>(box.CenterX() / kSlotWidth);
  return "scene-" + std::to_string(scene_id) + "-slot-" +
         std::to_string(slot);
}

}  // namespace

NewsGenerator::NewsGenerator(NewsConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  Check(config_.people_catalog >= 4, "catalog too small");
  for (std::size_t i = 0; i < config_.people_catalog; ++i) {
    Person person;
    person.id = static_cast<std::int64_t>(i);
    person.name = "person-" + std::to_string(i);
    person.gender = kGenders[rng_.UniformInt(0, 1)];
    person.hair = kHairColors[rng_.UniformInt(0, 3)];
    catalog_.push_back(std::move(person));
  }
}

std::vector<NewsFrame> NewsGenerator::Generate(std::size_t frames) {
  std::vector<NewsFrame> out;
  out.reserve(frames);
  while (out.size() < frames) {
    // One scene: a fixed cast of anchors at fixed desk positions.
    const std::int64_t scene_id = scene_counter_++;
    const auto scene_length = static_cast<std::size_t>(rng_.UniformInt(
        static_cast<std::int64_t>(config_.min_scene_frames),
        static_cast<std::int64_t>(config_.max_scene_frames)));
    const auto cast_size = static_cast<std::size_t>(rng_.UniformInt(1, 3));
    std::vector<const Person*> cast;
    std::vector<geometry::Box2D> anchors;
    const auto picks =
        rng_.SampleWithoutReplacement(catalog_.size(), cast_size);
    for (std::size_t c = 0; c < cast_size; ++c) {
      cast.push_back(&catalog_[picks[c]]);
      // Each anchor sits at the centre of its own desk slot, far from the
      // quantisation boundaries, so positional jitter never crosses slots.
      const double cx = kSlotWidth * (static_cast<double>(c) + 0.5);
      const double cy = rng_.Uniform(260.0, 420.0);
      const double w = rng_.Uniform(90.0, 130.0);
      anchors.push_back(geometry::Box2D{cx - w / 2.0, cy - w / 2.0,
                                        cx + w / 2.0, cy + w / 2.0});
    }

    for (std::size_t s = 0; s < scene_length && out.size() < frames; ++s) {
      NewsFrame frame;
      frame.index = frame_counter_;
      frame.timestamp = static_cast<double>(frame_counter_) *
                        config_.sample_period_seconds;
      ++frame_counter_;
      frame.scene_id = scene_id;
      for (std::size_t c = 0; c < cast.size(); ++c) {
        FaceOutput face;
        face.box = anchors[c].Translated(rng_.Normal(0.0, 4.0),
                                         rng_.Normal(0.0, 4.0));
        face.person_id = cast[c]->id;
        face.true_identity = cast[c]->name;
        face.true_gender = cast[c]->gender;
        face.true_hair = cast[c]->hair;
        // Upstream-model outputs with independent per-frame error
        // processes.
        face.identity = face.true_identity;
        if (rng_.Bernoulli(config_.identity_error_rate)) {
          face.identity =
              catalog_[static_cast<std::size_t>(rng_.UniformInt(
                           0,
                           static_cast<std::int64_t>(catalog_.size()) - 1))]
                  .name;
        }
        face.gender = face.true_gender;
        if (rng_.Bernoulli(config_.gender_error_rate)) {
          face.gender =
              face.true_gender == kGenders[0] ? kGenders[1] : kGenders[0];
        }
        face.hair = face.true_hair;
        if (rng_.Bernoulli(config_.hair_error_rate)) {
          face.hair = kHairColors[rng_.UniformInt(0, 3)];
        }
        frame.faces.push_back(std::move(face));
      }
      out.push_back(std::move(frame));
    }
  }
  return out;
}

core::ConsistencyExtraction ExtractNewsRecords(
    std::span<const NewsFrame> examples) {
  core::ConsistencyExtraction extraction;
  for (std::size_t e = 0; e < examples.size(); ++e) {
    const std::string group =
        "scene-" + std::to_string(examples[e].scene_id);
    extraction.frames.push_back(
        core::ConsistencyFrame{e, examples[e].timestamp, group});
    for (std::size_t f = 0; f < examples[e].faces.size(); ++f) {
      const FaceOutput& face = examples[e].faces[f];
      core::ConsistencyRecord record;
      record.example_index = e;
      record.output_index = static_cast<std::int64_t>(f);
      record.timestamp = examples[e].timestamp;
      record.group = group;
      record.identifier = SlotIdentifier(examples[e].scene_id, face.box);
      record.attributes.emplace_back("identity", face.identity);
      record.attributes.emplace_back("gender", face.gender);
      record.attributes.emplace_back("hair", face.hair);
      extraction.records.push_back(std::move(record));
    }
  }
  return extraction;
}

NewsSuite BuildNewsSuite() {
  NewsSuite built;
  core::ConsistencyConfig config;
  config.attribute_keys = {"identity", "gender", "hair"};
  config.temporal_threshold = 0.0;  // scene cuts are hard boundaries
  built.consistency = core::AddConsistencyAssertion<NewsFrame>(
      built.suite, config,
      [](std::span<const NewsFrame> examples) {
        return ExtractNewsRecords(examples);
      });
  return built;
}

std::vector<NewsPrecisionSample> MeasureNewsAssertionPrecision(
    std::span<const NewsFrame> frames, std::size_t sample_size,
    std::uint64_t seed) {
  common::Rng rng(seed);
  NewsSuite suite = BuildNewsSuite();
  const core::SeverityMatrix severities = suite.suite.CheckAll(frames);

  // Identifier correctness: a desk slot within one scene should only ever
  // hold one person.
  std::map<std::string, std::int64_t> slot_person;
  bool identifier_clean = true;
  for (const auto& frame : frames) {
    for (const auto& face : frame.faces) {
      const std::string id = SlotIdentifier(frame.scene_id, face.box);
      const auto [it, inserted] = slot_person.emplace(id, face.person_id);
      if (!inserted && it->second != face.person_id) {
        identifier_clean = false;
      }
    }
  }
  (void)identifier_clean;

  const auto names = suite.suite.Names();
  std::vector<NewsPrecisionSample> out;
  for (std::size_t a = 0; a < names.size(); ++a) {
    NewsPrecisionSample sample;
    sample.assertion = names[a];
    std::vector<std::size_t> fired = severities.ExamplesFiring(a);
    rng.Shuffle(fired);
    if (fired.size() > sample_size) fired.resize(sample_size);
    sample.sampled = fired.size();
    for (const std::size_t e : fired) {
      bool output_error = false;
      for (const auto& face : frames[e].faces) {
        if ((names[a] == "consistent:identity" &&
             face.identity != face.true_identity) ||
            (names[a] == "consistent:gender" &&
             face.gender != face.true_gender) ||
            (names[a] == "consistent:hair" && face.hair != face.true_hair)) {
          output_error = true;
          break;
        }
      }
      // With the spatial-anchor Id, a firing without any model-output error
      // can only come from an anchor-association mistake; both columns of
      // Table 3 count it for the identifier-inclusive precision.
      bool slot_collision = false;
      for (const auto& face : frames[e].faces) {
        const std::string id = SlotIdentifier(frames[e].scene_id, face.box);
        const auto it = slot_person.find(id);
        if (it != slot_person.end() && it->second != face.person_id) {
          slot_collision = true;
        }
      }
      if (output_error) ++sample.correct_model_output;
      if (output_error || slot_collision) ++sample.correct_with_identifier;
    }
    out.push_back(std::move(sample));
  }
  return out;
}

}  // namespace omg::tvnews
