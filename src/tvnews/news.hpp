// TV-news substrate (§2.2, §4.1 "Face identification in TV footage").
//
// The paper's media-studies lab runs face detection every three seconds over
// a decade of TV news, then identifies each face and classifies gender and
// hair colour with separate models; scene cuts are also computed. Because
// most hosts do not move between cuts of the same scene, the lab can assert
// that identity, gender and hair colour of faces that highly overlap within
// one scene are consistent.
//
// The simulator generates segments of scenes with anchors at stable desk
// positions and applies independent per-frame error processes to the three
// attribute models. The consistency assertion uses Id = (scene, desk slot)
// — a spatial anchor, which is why Table 3 distinguishes identifier errors
// from model-output errors — and Attrs = {identity, gender, hair}.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/assertion.hpp"
#include "core/consistency_adapter.hpp"
#include "geometry/box.hpp"

namespace omg::tvnews {

/// One face with the upstream models' outputs and the simulator's truth.
struct FaceOutput {
  geometry::Box2D box;
  // Model outputs.
  std::string identity;
  std::string gender;
  std::string hair;
  // Simulator ground truth (never visible to the assertion layer).
  std::int64_t person_id = -1;
  std::string true_identity;
  std::string true_gender;
  std::string true_hair;
};

/// One sampled frame (the paper samples every three seconds).
struct NewsFrame {
  std::size_t index = 0;
  double timestamp = 0.0;
  std::int64_t scene_id = -1;
  std::vector<FaceOutput> faces;
};

/// Generator parameters.
struct NewsConfig {
  double sample_period_seconds = 3.0;
  std::size_t min_scene_frames = 3;
  std::size_t max_scene_frames = 12;
  std::size_t people_catalog = 40;
  double identity_error_rate = 0.015;
  double gender_error_rate = 0.02;
  double hair_error_rate = 0.03;
  double frame_width = 1280.0;
  double frame_height = 720.0;
};

/// Deterministic TV-news segment generator.
class NewsGenerator {
 public:
  NewsGenerator(NewsConfig config, std::uint64_t seed);

  const NewsConfig& config() const { return config_; }

  /// Generates `frames` sampled frames across consecutive scenes.
  std::vector<NewsFrame> Generate(std::size_t frames);

 private:
  struct Person {
    std::int64_t id;
    std::string name;
    std::string gender;
    std::string hair;
  };

  NewsConfig config_;
  common::Rng rng_;
  std::vector<Person> catalog_;
  std::size_t frame_counter_ = 0;
  std::int64_t scene_counter_ = 0;
};

/// The news suite: consistency assertions over identity/gender/hair with a
/// spatial-anchor Id function; no temporal threshold (scene cuts are hard
/// boundaries).
struct NewsSuite {
  core::AssertionSuite<NewsFrame> suite;
  std::shared_ptr<core::ConsistencyAnalyzer<NewsFrame>> consistency;
};

NewsSuite BuildNewsSuite();

/// The Id/Attrs extractor: identifier = scene + desk-slot (quantised box
/// centre), attributes = the three model outputs. Exposed for tests.
core::ConsistencyExtraction ExtractNewsRecords(
    std::span<const NewsFrame> examples);

/// Table 3 precision for the news assertions: a firing is a correct catch
/// when some face in the flagged frame has a wrong attribute (model-output
/// column); the identifier column additionally accepts anchor-association
/// mistakes (two different people sharing a desk slot within one scene).
struct NewsPrecisionSample {
  std::string assertion;
  std::size_t sampled = 0;
  std::size_t correct_model_output = 0;
  std::size_t correct_with_identifier = 0;
};

std::vector<NewsPrecisionSample> MeasureNewsAssertionPrecision(
    std::span<const NewsFrame> frames, std::size_t sample_size,
    std::uint64_t seed);

}  // namespace omg::tvnews
