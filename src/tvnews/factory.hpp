// Declarative-config + facade registration of the TV-news assertions.
//
// `[tvnews.consistency]` with default parameters reproduces BuildNewsSuite
// exactly. The DomainTraits specialization makes NewsFrame servable through
// the type-erased serve::Monitor facade; RegisterNewsDomain exposes the
// factory as the facade's "tvnews" domain.
#pragma once

#include <string>
#include <string_view>

#include "config/assertion_factory.hpp"
#include "serve/any_example.hpp"
#include "serve/domain_registry.hpp"
#include "tvnews/news.hpp"

namespace omg::serve {

/// Facade identity of NewsFrame: domain tag "tvnews"; the severity hint is
/// the frame's face count (more faces, more attribute pairs to get wrong).
template <>
struct DomainTraits<tvnews::NewsFrame> {
  static constexpr std::string_view kDomain = "tvnews";
  static double SeverityHint(const tvnews::NewsFrame& frame);
  static std::string DebugString(const tvnews::NewsFrame& frame);
};

}  // namespace omg::serve

namespace omg::tvnews {

/// Registers the TV-news consistency source:
///   * `tvnews.consistency` { attributes, temporal_threshold } — one
///     "consistent:<key>" assertion per listed face attribute (Id = scene +
///     desk slot); the default temporal_threshold of 0 disables
///     flicker/appear because scene cuts are hard boundaries.
void RegisterNewsAssertions(config::AssertionFactory<NewsFrame>& factory);

/// Registers the "tvnews" domain with the facade registry: erased builders
/// over RegisterNewsAssertions (event names qualified "tvnews/...").
void RegisterNewsDomain(serve::DomainRegistry& registry);

}  // namespace omg::tvnews
