// Declarative-config registration of the TV-news assertions.
//
// `[tvnews.consistency]` with default parameters reproduces BuildNewsSuite
// exactly.
#pragma once

#include "config/assertion_factory.hpp"
#include "tvnews/news.hpp"

namespace omg::tvnews {

/// Registers the TV-news consistency source:
///   * `tvnews.consistency` { attributes, temporal_threshold } — one
///     "consistent:<key>" assertion per listed face attribute (Id = scene +
///     desk slot); the default temporal_threshold of 0 disables
///     flicker/appear because scene cuts are hard boundaries.
void RegisterNewsAssertions(config::AssertionFactory<NewsFrame>& factory);

}  // namespace omg::tvnews
