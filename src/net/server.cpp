#include "net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>
#include <utility>

#include "common/check.hpp"
#include "net/codec.hpp"
#include "obs/clock.hpp"
#include "serve/domain_registry.hpp"

namespace omg::net {

namespace {

serve::Error Errno(serve::ErrorCode code, const std::string& what) {
  return serve::Error{code, what + ": " + std::strerror(errno)};
}

/// Transport tag for kConnOpen traces.
constexpr std::uint64_t kTransportTcp = 0;
constexpr std::uint64_t kTransportUds = 1;

}  // namespace

// ------------------------------------------------------------- internals ---

/// Shared across every connection of one tenant: the token bucket is one
/// budget however many connections the tenant spreads its load over.
struct IngestServer::TenantState {
  TenantOptions options;
  Mutex mutex;
  double tokens OMG_GUARDED_BY(mutex) = 0.0;
  std::uint64_t last_refill_ns OMG_GUARDED_BY(mutex) = 0;
  TenantStats stats OMG_GUARDED_BY(mutex);

  /// Refills by elapsed time, then tries to spend `examples` tokens.
  /// `hint` >= the tenant's shed floor bypasses an exhausted bucket (the
  /// bucket is drained to zero so the bypass still consumes budget).
  bool Admit(std::uint64_t examples, double hint) {
    if (options.quota_eps <= 0.0) return true;  // unlimited
    MutexLock lock(mutex);
    const std::uint64_t now = obs::Clock::NowNs();
    const double burst =
        options.burst > 0.0 ? options.burst : options.quota_eps;
    if (last_refill_ns == 0) {
      // A fresh bucket starts full so a new tenant can burst immediately.
      last_refill_ns = now;
      tokens = burst;
    }
    tokens = std::min(
        burst, tokens + obs::Clock::ToSeconds(now - last_refill_ns) *
                            options.quota_eps);
    last_refill_ns = now;
    const double cost = static_cast<double>(examples);
    if (tokens >= cost) {
      tokens -= cost;
      return true;
    }
    if (options.has_shed_floor && hint >= options.shed_floor) {
      tokens = 0.0;
      return true;
    }
    return false;
  }
};

/// One wire-bindable monitor stream.
struct IngestServer::ExposedStream {
  serve::StreamHandle handle;
  std::string tenant;  ///< empty = bindable by any tenant
};

/// Per-connection state, owned by exactly one handler thread.
struct IngestServer::Connection {
  Connection(int fd_in, std::uint64_t id_in, bool uds_in,
             std::size_t max_frame_bytes)
      : fd(fd_in), id(id_in), uds(uds_in), assembler(max_frame_bytes) {}

  int fd;
  std::uint64_t id;
  bool uds;
  FrameAssembler assembler;

  bool authenticated = false;
  std::uint64_t session = 0;
  TenantState* tenant = nullptr;
  std::map<std::uint64_t, const ExposedStream*> bindings;
  std::uint64_t next_binding = 1;

  std::vector<std::uint8_t> outbound;
  std::size_t outbound_sent = 0;
  bool write_armed = false;
  bool closing = false;  ///< GOODBYE acked; close once outbound drains

  std::uint64_t frames = 0;
};

/// One handler thread's world: its epoll set, its wake eventfd, and the
/// connections it owns. Connections are handed over through `pending`.
struct IngestServer::Handler {
  int epoll_fd = -1;
  int wake_fd = -1;
  std::thread thread;
  Mutex pending_mutex;
  std::vector<std::unique_ptr<Connection>> pending
      OMG_GUARDED_BY(pending_mutex);
  std::map<int, std::unique_ptr<Connection>> connections;
};

// ----------------------------------------------------------- construction ---

IngestServer::IngestServer(IngestServerOptions options,
                           serve::Monitor& monitor,
                           const serve::DomainRegistry& domains)
    : options_(std::move(options)),
      monitor_(monitor),
      domains_(domains),
      tracer_(monitor.tracer()) {
  common::Check(options_.handler_threads >= 1,
                "ingest server needs at least one handler thread");
  common::Check(options_.max_frame_bytes > 0,
                "ingest server needs a positive frame limit");
  for (TenantOptions& tenant : options_.tenants) {
    common::Check(ValidTenantName(tenant.name),
                  "invalid tenant name '" + tenant.name +
                      "' (want [A-Za-z0-9_-]{1,64})");
    common::Check(tenant.quota_eps >= 0.0 && tenant.burst >= 0.0,
                  "tenant '" + tenant.name + "' has a negative quota");
    if (!tenant.has_shed_floor) {
      tenant.shed_floor = std::numeric_limits<double>::infinity();
    }
    auto state = std::make_unique<TenantState>();
    state->options = tenant;
    const bool inserted =
        tenants_.emplace(tenant.name, std::move(state)).second;
    common::Check(inserted, "duplicate tenant '" + tenant.name + "'");
  }
}

IngestServer::~IngestServer() { Stop(); }

bool IngestServer::ValidTenantName(std::string_view name) {
  if (name.empty() || name.size() > 64) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

void IngestServer::ExposeStream(const serve::StreamHandle& handle,
                                std::string tenant) {
  common::Check(!started_, "ExposeStream must precede Start()");
  common::Check(handle.valid(), "cannot expose an invalid stream handle");
  MutexLock lock(tenants_mutex_);
  common::Check(tenant.empty() || tenants_.count(tenant) > 0 ||
                    options_.tenants.empty(),
                "stream '" + std::string(handle.name()) +
                    "' is restricted to undeclared tenant '" + tenant + "'");
  const std::string name(handle.name());
  const bool inserted =
      streams_.emplace(name, ExposedStream{handle, std::move(tenant)}).second;
  common::Check(inserted, "stream '" + name + "' exposed twice");
}

// ---------------------------------------------------------------- sockets ---

namespace {

serve::Result<int> MakeUdsListener(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return serve::Error{serve::ErrorCode::kInvalidArgument,
                        "UDS path '" + path + "' exceeds sockaddr_un"};
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd =
      ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Errno(serve::ErrorCode::kInvalidArgument, "socket(AF_UNIX)");
  }
  ::unlink(path.c_str());  // replace a stale socket file
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(fd, 128) < 0) {
    const serve::Error error =
        Errno(serve::ErrorCode::kInvalidArgument, "bind/listen '" + path +
                                                      "'");
    ::close(fd);
    return error;
  }
  return fd;
}

serve::Result<std::pair<int, std::uint16_t>> MakeTcpListener(
    std::uint16_t port) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Errno(serve::ErrorCode::kInvalidArgument, "socket(AF_INET)");
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(fd, 128) < 0) {
    const serve::Error error = Errno(serve::ErrorCode::kInvalidArgument,
                                     "bind/listen 127.0.0.1:" +
                                         std::to_string(port));
    ::close(fd);
    return error;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) <
      0) {
    const serve::Error error =
        Errno(serve::ErrorCode::kInvalidArgument, "getsockname");
    ::close(fd);
    return error;
  }
  return std::pair<int, std::uint16_t>{fd, ntohs(bound.sin_port)};
}

void Wake(int event_fd) {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(event_fd, &one, sizeof(one));
}

void DrainEventFd(int event_fd) {
  std::uint64_t value;
  while (::read(event_fd, &value, sizeof(value)) > 0) {
  }
}

}  // namespace

serve::Result<ServerEndpoints> IngestServer::Start() {
  if (started_) {
    return serve::Error{serve::ErrorCode::kInvalidArgument,
                        "ingest server already started"};
  }
  if (options_.uds_path.empty() && !options_.tcp) {
    return serve::Error{serve::ErrorCode::kInvalidArgument,
                        "ingest server needs a UDS path or tcp=true"};
  }
  ServerEndpoints endpoints;
  if (!options_.uds_path.empty()) {
    serve::Result<int> fd = MakeUdsListener(options_.uds_path);
    if (!fd.ok()) return fd.error();
    uds_listen_fd_ = fd.value();
    endpoints.uds_path = options_.uds_path;
  }
  if (options_.tcp) {
    serve::Result<std::pair<int, std::uint16_t>> bound =
        MakeTcpListener(options_.tcp_port);
    if (!bound.ok()) {
      Stop();
      return bound.error();
    }
    tcp_listen_fd_ = bound.value().first;
    endpoints.tcp_port = bound.value().second;
  }
  stop_event_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  common::Check(stop_event_fd_ >= 0, "eventfd failed");
  stopping_.store(false, std::memory_order_release);
  handlers_.clear();
  for (std::size_t i = 0; i < options_.handler_threads; ++i) {
    auto handler = std::make_unique<Handler>();
    handler->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    handler->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    common::Check(handler->epoll_fd >= 0 && handler->wake_fd >= 0,
                  "epoll/eventfd setup failed");
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.fd = handler->wake_fd;
    common::Check(::epoll_ctl(handler->epoll_fd, EPOLL_CTL_ADD,
                              handler->wake_fd, &event) == 0,
                  "epoll_ctl(wake) failed");
    handlers_.push_back(std::move(handler));
  }
  for (auto& handler : handlers_) {
    Handler* raw = handler.get();
    handler->thread = std::thread([this, raw] { HandlerLoop(*raw); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return endpoints;
}

void IngestServer::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    // A concurrent or repeated Stop: wait for the first caller's joins by
    // serialising on the threads below only if we own them (we don't).
    return;
  }
  if (stop_event_fd_ >= 0) Wake(stop_event_fd_);
  for (auto& handler : handlers_) {
    if (handler->wake_fd >= 0) Wake(handler->wake_fd);
  }
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& handler : handlers_) {
    if (handler->thread.joinable()) handler->thread.join();
    if (handler->epoll_fd >= 0) ::close(handler->epoll_fd);
    if (handler->wake_fd >= 0) ::close(handler->wake_fd);
  }
  handlers_.clear();
  if (uds_listen_fd_ >= 0) {
    ::close(uds_listen_fd_);
    uds_listen_fd_ = -1;
    ::unlink(options_.uds_path.c_str());
  }
  if (tcp_listen_fd_ >= 0) {
    ::close(tcp_listen_fd_);
    tcp_listen_fd_ = -1;
  }
  if (stop_event_fd_ >= 0) {
    ::close(stop_event_fd_);
    stop_event_fd_ = -1;
  }
  started_ = false;
}

// --------------------------------------------------------------- acceptor ---

void IngestServer::AcceptLoop() {
  const int epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  common::Check(epoll_fd >= 0, "acceptor epoll_create1 failed");
  const auto watch = [epoll_fd](int fd) {
    if (fd < 0) return;
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.fd = fd;
    common::Check(::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &event) == 0,
                  "acceptor epoll_ctl failed");
  };
  watch(uds_listen_fd_);
  watch(tcp_listen_fd_);
  watch(stop_event_fd_);
  epoll_event events[8];
  while (!stopping_.load(std::memory_order_acquire)) {
    const int ready = ::epoll_wait(epoll_fd, events, 8, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < ready; ++i) {
      const int fd = events[i].data.fd;
      if (fd == stop_event_fd_) {
        DrainEventFd(stop_event_fd_);
        continue;  // loop condition sees stopping_
      }
      DrainAccept(fd, fd == uds_listen_fd_);
    }
  }
  ::close(epoll_fd);
}

void IngestServer::DrainAccept(int listen_fd, bool uds) {
  for (;;) {
    const int fd =
        ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient accept error: wait for epoll
    }
    const std::uint64_t id =
        next_conn_id_.fetch_add(1, std::memory_order_relaxed);
    connections_seen_.fetch_add(1, std::memory_order_relaxed);
    connections_active_.fetch_add(1, std::memory_order_relaxed);
    OMG_TRACE(if (tracer_ != nullptr) tracer_->EmitControl(
                  obs::TraceEventKind::kConnOpen, obs::TracePhase::kInstant,
                  obs::TraceEvent::kNoStream,
                  uds ? kTransportUds : kTransportTcp, id));
    auto conn = std::make_unique<Connection>(fd, id, uds,
                                             options_.max_frame_bytes);
    Handler& handler =
        *handlers_[next_handler_.fetch_add(1, std::memory_order_relaxed) %
                   handlers_.size()];
    {
      MutexLock lock(handler.pending_mutex);
      handler.pending.push_back(std::move(conn));
    }
    Wake(handler.wake_fd);
  }
}

// --------------------------------------------------------------- handlers ---

void IngestServer::HandlerLoop(Handler& handler) {
  epoll_event events[64];
  while (!stopping_.load(std::memory_order_acquire)) {
    const int ready = ::epoll_wait(handler.epoll_fd, events, 64, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < ready; ++i) {
      const int fd = events[i].data.fd;
      if (fd == handler.wake_fd) {
        DrainEventFd(handler.wake_fd);
        AdoptPending(handler);
        continue;
      }
      const auto it = handler.connections.find(fd);
      if (it == handler.connections.end()) continue;  // closed this round
      Connection& conn = *it->second;
      bool keep = true;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        keep = false;
      }
      if (keep && (events[i].events & EPOLLIN)) {
        keep = HandleReadable(handler, conn);
      }
      if (keep && (events[i].events & EPOLLOUT)) {
        keep = FlushOutbound(handler, conn);
        if (keep && conn.closing &&
            conn.outbound_sent == conn.outbound.size()) {
          keep = false;  // GOODBYE fully acked
        }
      }
      if (!keep) CloseConnection(handler, conn);
    }
  }
  // Orderly teardown: connections die with the server, in-flight partial
  // frames are discarded (the monitor keeps whatever was already admitted).
  std::vector<int> fds;
  fds.reserve(handler.connections.size());
  for (const auto& [fd, conn] : handler.connections) fds.push_back(fd);
  for (const int fd : fds) {
    CloseConnection(handler, *handler.connections.at(fd));
  }
}

void IngestServer::AdoptPending(Handler& handler) {
  std::vector<std::unique_ptr<Connection>> adopted;
  {
    MutexLock lock(handler.pending_mutex);
    adopted.swap(handler.pending);
  }
  for (auto& conn : adopted) {
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.fd = conn->fd;
    if (::epoll_ctl(handler.epoll_fd, EPOLL_CTL_ADD, conn->fd, &event) !=
        0) {
      ::close(conn->fd);
      connections_active_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    handler.connections.emplace(conn->fd, std::move(conn));
  }
}

bool IngestServer::HandleReadable(Handler& handler, Connection& conn) {
  std::uint8_t buffer[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buffer, sizeof(buffer), 0);
    if (n == 0) return false;  // peer closed
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    conn.assembler.Feed({buffer, static_cast<std::size_t>(n)});
    for (;;) {
      FrameAssembler::Step step = conn.assembler.Next();
      if (step.frame) {
        frames_.fetch_add(1, std::memory_order_relaxed);
        ++conn.frames;
        if (!ProcessFrame(handler, conn, std::move(*step.frame))) {
          return false;
        }
        continue;
      }
      if (step.failure) {
        // A skipped frame's examples never reach OnData, so its offered
        // bump happens here: the tenant identity offered == admitted +
        // shed + quota_rejected + decode_errors must hold under wire
        // corruption too. lost_examples is trustworthy — it is only
        // nonzero when the header passed its own CRC.
        if (step.failure->lost_examples > 0) {
          Account(conn, WireOutcome::kOffered, step.failure->lost_examples);
        }
        AccountReject(conn, step.failure->lost_examples,
                      step.failure->error.code);
        if (step.failure->fatal) return false;
        continue;  // payload CRC mismatch: frame skipped, keep reading
      }
      break;  // need more bytes
    }
  }
  return true;
}

// ----------------------------------------------------------------- frames ---

bool IngestServer::ProcessFrame(Handler& handler, Connection& conn,
                                Frame frame) {
  switch (frame.header.type) {
    case FrameType::kHello:
      return OnHello(handler, conn, frame);
    case FrameType::kBindStream:
      return OnBindStream(handler, conn, frame);
    case FrameType::kData:
      OnData(conn, frame);
      return true;
    case FrameType::kFlush: {
      if (!conn.authenticated) {
        const serve::Error error{serve::ErrorCode::kNotAuthenticated,
                                 "FLUSH before HELLO"};
        return SendFrame(handler, conn, FrameType::kError, frame.header.seq,
                         {}, &error);
      }
      monitor_.Flush();
      return SendFrame(handler, conn, FrameType::kAck, frame.header.seq, {},
                       nullptr);
    }
    case FrameType::kStats: {
      if (!conn.authenticated) {
        const serve::Error error{serve::ErrorCode::kNotAuthenticated,
                                 "STATS before HELLO"};
        return SendFrame(handler, conn, FrameType::kError, frame.header.seq,
                         {}, &error);
      }
      monitor_.Flush();
      const runtime::MetricsSnapshot snapshot = monitor_.Metrics();
      const std::uint64_t values[8] = {
          offered_.load(std::memory_order_relaxed),
          admitted_.load(std::memory_order_relaxed),
          quota_rejected_.load(std::memory_order_relaxed),
          decode_errors_.load(std::memory_order_relaxed),
          snapshot.examples_seen,
          snapshot.TotalShedExamples(),
          snapshot.TotalDroppedExamples(),
          snapshot.TotalErroredExamples(),
      };
      return SendFrame(handler, conn, FrameType::kAck, frame.header.seq,
                       values, nullptr);
    }
    case FrameType::kGoodbye: {
      conn.closing = true;
      if (!SendFrame(handler, conn, FrameType::kAck, frame.header.seq, {},
                     nullptr)) {
        return false;
      }
      // Close now if the ACK went out whole; else EPOLLOUT finishes it.
      return conn.outbound_sent != conn.outbound.size();
    }
    case FrameType::kAck:
    case FrameType::kError:
    case FrameType::kTraceHeader:  // a trace-file artifact, never live
      return true;  // non-client-request types: ignore on receive
  }
  return true;
}

bool IngestServer::OnHello(Handler& handler, Connection& conn,
                           const Frame& frame) {
  const std::uint64_t seq = frame.header.seq;
  const auto fail = [&](serve::ErrorCode code, std::string message) {
    const serve::Error error{code, std::move(message)};
    return SendFrame(handler, conn, FrameType::kError, seq, {}, &error);
  };
  WireReader reader(frame.payload);
  std::string tenant_name;
  std::string token;
  if (!reader.String(tenant_name) || !reader.String(token) ||
      !reader.AtEnd()) {
    return fail(serve::ErrorCode::kMalformedPayload,
                "HELLO payload malformed");
  }
  if (!ValidTenantName(tenant_name)) {
    return fail(serve::ErrorCode::kUnknownTenant,
                "invalid tenant name '" + tenant_name + "'");
  }
  TenantState* tenant = ResolveTenant(tenant_name);
  if (tenant == nullptr) {
    return fail(serve::ErrorCode::kUnknownTenant,
                "tenant '" + tenant_name +
                    "' is not declared on this server");
  }
  if (!tenant->options.token.empty() && tenant->options.token != token) {
    return fail(serve::ErrorCode::kAuthFailed,
                "token mismatch for tenant '" + tenant_name + "'");
  }
  conn.authenticated = true;
  conn.tenant = tenant;
  conn.session = next_session_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t values[1] = {conn.session};
  return SendFrame(handler, conn, FrameType::kAck, seq, values, nullptr);
}

bool IngestServer::OnBindStream(Handler& handler, Connection& conn,
                                const Frame& frame) {
  const std::uint64_t seq = frame.header.seq;
  const auto fail = [&](serve::ErrorCode code, std::string message) {
    const serve::Error error{code, std::move(message)};
    return SendFrame(handler, conn, FrameType::kError, seq, {}, &error);
  };
  WireReader reader(frame.payload);
  std::string domain;
  std::string stream;
  if (!reader.String(domain) || !reader.String(stream) || !reader.AtEnd()) {
    return fail(serve::ErrorCode::kMalformedPayload,
                "BIND payload malformed");
  }
  if (!conn.authenticated) {
    return fail(serve::ErrorCode::kNotAuthenticated, "BIND before HELLO");
  }
  const auto it = streams_.find(stream);
  // A stream restricted to another tenant reads as unknown — bindings must
  // not leak the roster across tenants.
  if (it == streams_.end() ||
      (!it->second.tenant.empty() &&
       it->second.tenant != conn.tenant->options.name)) {
    return fail(serve::ErrorCode::kUnknownStream,
                "no stream '" + stream + "' exposed to this tenant");
  }
  if (it->second.handle.domain() != domain) {
    return fail(serve::ErrorCode::kUnknownDomain,
                "stream '" + stream + "' serves domain '" +
                    std::string(it->second.handle.domain()) + "', not '" +
                    domain + "'");
  }
  const std::uint64_t binding = conn.next_binding++;
  conn.bindings.emplace(binding, &it->second);
  const std::uint64_t values[1] = {binding};
  return SendFrame(handler, conn, FrameType::kAck, seq, values, nullptr);
}

void IngestServer::OnData(Connection& conn, const Frame& frame) {
  const std::uint64_t count = frame.header.count;
  Account(conn, WireOutcome::kOffered, count);
  if (!conn.authenticated) {
    AccountReject(conn, count, serve::ErrorCode::kNotAuthenticated);
    return;
  }
  const auto it = conn.bindings.find(frame.header.stream);
  if (it == conn.bindings.end()) {
    AccountReject(conn, count, serve::ErrorCode::kUnknownStream);
    return;
  }
  const ExposedStream& exposed = *it->second;
  const std::string_view domain = frame.header.domain_tag();
  if (exposed.handle.domain() != domain) {
    AccountReject(conn, count, serve::ErrorCode::kUnknownDomain);
    return;
  }
  const PayloadCodec* codec = domains_.CodecFor(std::string(domain));
  if (codec == nullptr) {
    AccountReject(conn, count, serve::ErrorCode::kUnknownDomain);
    return;
  }
  const double hint = frame.header.hint();
  if (!conn.tenant->Admit(count, hint)) {
    Account(conn, WireOutcome::kQuotaRejected, count);
    OMG_TRACE(if (tracer_ != nullptr) tracer_->EmitControl(
                  obs::TraceEventKind::kWireReject,
                  obs::TracePhase::kInstant, exposed.handle.id(), count,
                  static_cast<std::uint64_t>(
                      serve::ErrorCode::kQuotaExceeded)));
    return;
  }
  serve::Result<std::vector<serve::AnyExample>> batch =
      DecodeBatch(*codec, frame.payload, frame.header.count);
  if (!batch.ok()) {
    AccountReject(conn, count, batch.code());
    return;
  }
  serve::Result<serve::ObserveOutcome> outcome = monitor_.ObserveBatch(
      exposed.handle, std::move(batch.value()), hint);
  if (!outcome.ok()) {
    AccountReject(conn, count, outcome.code());
    return;
  }
  if (outcome.value() == serve::ObserveOutcome::kAdmitted) {
    Account(conn, WireOutcome::kAdmitted, count);
    OMG_TRACE(if (tracer_ != nullptr) tracer_->EmitControl(
                  obs::TraceEventKind::kFrameDecode,
                  obs::TracePhase::kInstant, exposed.handle.id(), count,
                  frame.payload.size()));
  } else {
    Account(conn, WireOutcome::kShed, count);
  }
}

// ---------------------------------------------------------------- replies ---

bool IngestServer::SendFrame(Handler& handler, Connection& conn,
                             FrameType type, std::uint64_t seq,
                             std::span<const std::uint64_t> values,
                             const serve::Error* error) {
  WireWriter payload;
  if (type == FrameType::kError) {
    common::Check(error != nullptr, "ERROR frame without an error");
    payload.U16(static_cast<std::uint16_t>(error->code));
    payload.String(error->message);
  } else {
    payload.U32(static_cast<std::uint32_t>(values.size()));
    for (const std::uint64_t value : values) payload.U64(value);
  }
  FrameHeader header;
  header.type = type;
  header.seq = seq;
  header.session = conn.session;
  const std::vector<std::uint8_t> encoded =
      EncodeFrame(header, payload.bytes());
  conn.outbound.insert(conn.outbound.end(), encoded.begin(), encoded.end());
  return FlushOutbound(handler, conn);
}

bool IngestServer::FlushOutbound(Handler& handler, Connection& conn) {
  while (conn.outbound_sent < conn.outbound.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.outbound.data() + conn.outbound_sent,
               conn.outbound.size() - conn.outbound_sent, MSG_NOSIGNAL);
    if (n > 0) {
      conn.outbound_sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn.write_armed) {
        epoll_event event{};
        event.events = EPOLLIN | EPOLLOUT;
        event.data.fd = conn.fd;
        ::epoll_ctl(handler.epoll_fd, EPOLL_CTL_MOD, conn.fd, &event);
        conn.write_armed = true;
      }
      return true;  // EPOLLOUT resumes the flush
    }
    return false;  // broken pipe
  }
  conn.outbound.clear();
  conn.outbound_sent = 0;
  if (conn.write_armed) {
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.fd = conn.fd;
    ::epoll_ctl(handler.epoll_fd, EPOLL_CTL_MOD, conn.fd, &event);
    conn.write_armed = false;
  }
  return true;
}

void IngestServer::CloseConnection(Handler& handler, Connection& conn) {
  OMG_TRACE(if (tracer_ != nullptr) tracer_->EmitControl(
                obs::TraceEventKind::kConnClose, obs::TracePhase::kInstant,
                obs::TraceEvent::kNoStream, conn.id, conn.frames));
  ::epoll_ctl(handler.epoll_fd, EPOLL_CTL_DEL, conn.fd, nullptr);
  ::close(conn.fd);
  connections_active_.fetch_sub(1, std::memory_order_relaxed);
  handler.connections.erase(conn.fd);  // destroys conn
}

// ------------------------------------------------------------- accounting ---

void IngestServer::Account(Connection& conn, WireOutcome outcome,
                           std::uint64_t examples) {
  if (examples == 0 && outcome != WireOutcome::kOffered) return;
  const char* name = nullptr;
  std::uint64_t TenantStats::*slot = nullptr;
  std::atomic<std::uint64_t>* global = nullptr;
  switch (outcome) {
    case WireOutcome::kOffered:
      name = "offered";
      slot = &TenantStats::offered;
      global = &offered_;
      break;
    case WireOutcome::kAdmitted:
      name = "admitted";
      slot = &TenantStats::admitted;
      global = &admitted_;
      break;
    case WireOutcome::kShed:
      name = "shed";
      slot = &TenantStats::shed;
      global = &shed_;
      break;
    case WireOutcome::kQuotaRejected:
      name = "quota_rejected";
      slot = &TenantStats::quota_rejected;
      global = &quota_rejected_;
      break;
    case WireOutcome::kDecodeError:
      name = "decode_errors";
      slot = &TenantStats::decode_errors;
      global = &decode_errors_;
      break;
  }
  global->fetch_add(examples, std::memory_order_relaxed);
  if (conn.tenant == nullptr) return;
  {
    MutexLock lock(conn.tenant->mutex);
    conn.tenant->stats.*slot += examples;
  }
  monitor_.RecordNamedMetric(
      "tenant/" + conn.tenant->options.name + "/" + name, examples);
}

void IngestServer::AccountReject(Connection& conn, std::uint64_t examples,
                                 serve::ErrorCode code) {
  Account(conn, WireOutcome::kDecodeError, examples);
  OMG_TRACE(if (tracer_ != nullptr) tracer_->EmitControl(
                obs::TraceEventKind::kWireReject, obs::TracePhase::kInstant,
                obs::TraceEvent::kNoStream, examples,
                static_cast<std::uint64_t>(code)));
}

IngestServer::TenantState* IngestServer::ResolveTenant(
    const std::string& name) {
  MutexLock lock(tenants_mutex_);
  const auto it = tenants_.find(name);
  if (it != tenants_.end()) return it->second.get();
  if (!options_.tenants.empty()) return nullptr;  // closed roster
  // Open server: admit any well-formed tenant on first HELLO, unlimited.
  auto state = std::make_unique<TenantState>();
  state->options.name = name;
  state->options.shed_floor = std::numeric_limits<double>::infinity();
  TenantState* raw = state.get();
  tenants_.emplace(name, std::move(state));
  return raw;
}

IngestServerStats IngestServer::Stats() const {
  IngestServerStats stats;
  stats.connections_seen = connections_seen_.load(std::memory_order_relaxed);
  stats.connections_active =
      connections_active_.load(std::memory_order_relaxed);
  stats.frames = frames_.load(std::memory_order_relaxed);
  stats.totals.offered = offered_.load(std::memory_order_relaxed);
  stats.totals.admitted = admitted_.load(std::memory_order_relaxed);
  stats.totals.shed = shed_.load(std::memory_order_relaxed);
  stats.totals.quota_rejected =
      quota_rejected_.load(std::memory_order_relaxed);
  stats.totals.decode_errors =
      decode_errors_.load(std::memory_order_relaxed);
  MutexLock lock(tenants_mutex_);
  for (const auto& [name, tenant] : tenants_) {
    MutexLock tenant_lock(tenant->mutex);
    stats.tenants.emplace(name, tenant->stats);
  }
  return stats;
}

}  // namespace omg::net
