#include "net/wire.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>

#include "common/check.hpp"

namespace omg::net {

namespace {

/// The reflected IEEE CRC32 table, built once.
const std::array<std::uint32_t, 256>& CrcTable() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> built{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      built[i] = crc;
    }
    return built;
  }();
  return table;
}

serve::Error WireError(serve::ErrorCode code, std::string message) {
  return serve::Error{code, std::move(message)};
}

}  // namespace

std::string_view FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "hello";
    case FrameType::kBindStream: return "bind_stream";
    case FrameType::kData: return "data";
    case FrameType::kFlush: return "flush";
    case FrameType::kStats: return "stats";
    case FrameType::kGoodbye: return "goodbye";
    case FrameType::kAck: return "ack";
    case FrameType::kError: return "error";
    case FrameType::kTraceHeader: return "trace_header";
  }
  return "unknown";
}

bool KnownFrameType(std::uint16_t type) {
  return type >= static_cast<std::uint16_t>(FrameType::kHello) &&
         type <= static_cast<std::uint16_t>(FrameType::kTraceHeader);
}

std::uint32_t Crc32(std::span<const std::uint8_t> bytes) {
  const auto& table = CrcTable();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t byte : bytes) {
    crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string_view FrameHeader::domain_tag() const {
  std::size_t length = 0;
  while (length < kDomainBytes && domain[length] != '\0') ++length;
  return {domain, length};
}

void FrameHeader::set_domain_tag(std::string_view tag) {
  common::Check(tag.size() <= kDomainBytes,
                "domain tag '" + std::string(tag) + "' exceeds the " +
                    std::to_string(kDomainBytes) + "-byte wire field");
  std::memset(domain, 0, kDomainBytes);
  std::memcpy(domain, tag.data(), tag.size());
}

double FrameHeader::hint() const { return std::bit_cast<double>(hint_bits); }

void FrameHeader::set_hint(double value) {
  hint_bits = std::bit_cast<std::uint64_t>(value);
}

void WireWriter::U16(std::uint16_t value) {
  buffer_.push_back(static_cast<std::uint8_t>(value));
  buffer_.push_back(static_cast<std::uint8_t>(value >> 8));
}

void WireWriter::U32(std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    buffer_.push_back(static_cast<std::uint8_t>(value >> shift));
  }
}

void WireWriter::U64(std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    buffer_.push_back(static_cast<std::uint8_t>(value >> shift));
  }
}

void WireWriter::F64(double value) { U64(std::bit_cast<std::uint64_t>(value)); }

void WireWriter::String(std::string_view value) {
  common::Check(value.size() <= WireReader::kMaxStringBytes,
                "wire string exceeds the protocol limit");
  U32(static_cast<std::uint32_t>(value.size()));
  Bytes(value.data(), value.size());
}

void WireWriter::Bytes(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  buffer_.insert(buffer_.end(), bytes, bytes + size);
}

bool WireReader::U8(std::uint8_t& value) {
  if (remaining() < 1) return false;
  value = bytes_[offset_++];
  return true;
}

bool WireReader::U16(std::uint16_t& value) {
  if (remaining() < 2) return false;
  value = static_cast<std::uint16_t>(bytes_[offset_] |
                                     (bytes_[offset_ + 1] << 8));
  offset_ += 2;
  return true;
}

bool WireReader::U32(std::uint32_t& value) {
  if (remaining() < 4) return false;
  value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(bytes_[offset_ + i]) << (8 * i);
  }
  offset_ += 4;
  return true;
}

bool WireReader::U64(std::uint64_t& value) {
  if (remaining() < 8) return false;
  value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(bytes_[offset_ + i]) << (8 * i);
  }
  offset_ += 8;
  return true;
}

bool WireReader::I64(std::int64_t& value) {
  std::uint64_t raw;
  if (!U64(raw)) return false;
  value = static_cast<std::int64_t>(raw);
  return true;
}

bool WireReader::F64(double& value) {
  std::uint64_t raw;
  if (!U64(raw)) return false;
  value = std::bit_cast<double>(raw);
  return true;
}

bool WireReader::String(std::string& value) {
  std::uint32_t length;
  const std::size_t before = offset_;
  if (!U32(length)) return false;
  if (length > kMaxStringBytes || remaining() < length) {
    offset_ = before;
    return false;
  }
  value.assign(reinterpret_cast<const char*>(bytes_.data() + offset_),
               length);
  offset_ += length;
  return true;
}

void EncodeHeader(const FrameHeader& header, WireWriter& out) {
  const std::size_t start = out.size();
  out.Bytes(kWireMagic, sizeof(kWireMagic));
  out.U16(header.version);
  out.U16(static_cast<std::uint16_t>(header.type));
  out.U64(header.seq);
  out.U64(header.session);
  out.U64(header.stream);
  out.Bytes(header.domain, FrameHeader::kDomainBytes);
  out.U32(header.count);
  out.U32(header.payload_length);
  out.U32(header.payload_crc32);
  out.U64(header.hint_bits);
  // The trailing header CRC covers everything appended above, whatever the
  // caller's header_crc32 said.
  out.U32(Crc32(std::span<const std::uint8_t>(
      out.bytes().data() + start, FrameHeader::kCrcCoveredBytes)));
}

std::vector<std::uint8_t> EncodeFrame(FrameHeader header,
                                      std::span<const std::uint8_t> payload) {
  header.payload_length = static_cast<std::uint32_t>(payload.size());
  header.payload_crc32 = Crc32(payload);
  WireWriter out;
  out.buffer().reserve(FrameHeader::kBytes + payload.size());
  EncodeHeader(header, out);
  out.Bytes(payload.data(), payload.size());
  return std::move(out.buffer());
}

serve::Result<FrameHeader> DecodeHeader(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < FrameHeader::kBytes) {
    return WireError(serve::ErrorCode::kTruncatedFrame,
                     "frame header truncated: " +
                         std::to_string(bytes.size()) + " of " +
                         std::to_string(FrameHeader::kBytes) + " bytes");
  }
  if (std::memcmp(bytes.data(), kWireMagic, sizeof(kWireMagic)) != 0) {
    return WireError(serve::ErrorCode::kBadMagic,
                     "frame does not start with the OMGW magic");
  }
  WireReader reader(bytes.subspan(sizeof(kWireMagic)));
  FrameHeader header;
  std::uint16_t type = 0;
  reader.U16(header.version);
  reader.U16(type);
  reader.U64(header.seq);
  reader.U64(header.session);
  reader.U64(header.stream);
  std::uint64_t domain_words[1];
  static_assert(FrameHeader::kDomainBytes == 8);
  reader.U64(domain_words[0]);
  std::memcpy(header.domain, domain_words, FrameHeader::kDomainBytes);
  reader.U32(header.count);
  reader.U32(header.payload_length);
  reader.U32(header.payload_crc32);
  reader.U64(header.hint_bits);
  reader.U32(header.header_crc32);
  if (header.version != kWireVersion) {
    return WireError(serve::ErrorCode::kBadVersion,
                     "wire version " + std::to_string(header.version) +
                         " is not the supported version " +
                         std::to_string(kWireVersion));
  }
  if (!KnownFrameType(type)) {
    return WireError(serve::ErrorCode::kUnknownFrameType,
                     "unknown frame type " + std::to_string(type));
  }
  // Checked after magic/version/type so their targeted diagnostics win,
  // but before any field is trusted: a corrupted count or payload_length
  // must surface as header corruption, not feed accounting.
  if (Crc32(bytes.first(FrameHeader::kCrcCoveredBytes)) !=
      header.header_crc32) {
    return WireError(serve::ErrorCode::kCrcMismatch,
                     "frame header CRC32 does not match its trailing word");
  }
  header.type = static_cast<FrameType>(type);
  return header;
}

serve::Result<Frame> DecodeFrame(std::span<const std::uint8_t> bytes,
                                 std::size_t max_frame_bytes) {
  serve::Result<FrameHeader> header = DecodeHeader(bytes);
  if (!header.ok()) return header.error();
  if (max_frame_bytes != 0 &&
      header.value().payload_length > max_frame_bytes) {
    return WireError(serve::ErrorCode::kOversizedFrame,
                     "payload of " +
                         std::to_string(header.value().payload_length) +
                         " bytes exceeds the " +
                         std::to_string(max_frame_bytes) + "-byte limit");
  }
  const std::span<const std::uint8_t> rest =
      bytes.subspan(FrameHeader::kBytes);
  if (rest.size() < header.value().payload_length) {
    return WireError(serve::ErrorCode::kTruncatedFrame,
                     "frame payload truncated: " +
                         std::to_string(rest.size()) + " of " +
                         std::to_string(header.value().payload_length) +
                         " bytes");
  }
  const std::span<const std::uint8_t> payload =
      rest.first(header.value().payload_length);
  if (Crc32(payload) != header.value().payload_crc32) {
    return WireError(serve::ErrorCode::kCrcMismatch,
                     "payload CRC32 does not match the header");
  }
  Frame frame;
  frame.header = header.value();
  frame.payload.assign(payload.begin(), payload.end());
  return frame;
}

FrameAssembler::FrameAssembler(std::size_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes) {
  common::Check(max_frame_bytes_ > 0,
                "frame assembler needs a positive frame limit");
}

void FrameAssembler::Feed(std::span<const std::uint8_t> bytes) {
  // Compact the consumed prefix before growing: the buffer then stays
  // bounded by one partial frame plus one read slice.
  if (consumed_ > 0) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

FrameAssembler::Step FrameAssembler::Next() {
  Step step;
  if (poisoned_) {
    step.failure = *poisoned_;
    return step;
  }
  const std::span<const std::uint8_t> pending =
      std::span<const std::uint8_t>(buffer_).subspan(consumed_);
  if (pending.size() < FrameHeader::kBytes) return step;  // need more bytes

  const serve::Result<FrameHeader> header = DecodeHeader(pending);
  if (!header.ok()) {
    // Every header-level failure here is fatal: without a trustworthy
    // header there is no length to skip by. (kTruncatedFrame cannot occur
    // — kBytes availability was checked above.)
    DecodeFailure failure{header.error(), 0, true};
    poisoned_ = failure;
    step.failure = std::move(failure);
    return step;
  }
  if (header.value().payload_length > max_frame_bytes_) {
    DecodeFailure failure{
        WireError(serve::ErrorCode::kOversizedFrame,
                  "payload of " +
                      std::to_string(header.value().payload_length) +
                      " bytes exceeds the " +
                      std::to_string(max_frame_bytes_) + "-byte limit"),
        header.value().count, true};
    poisoned_ = failure;
    step.failure = std::move(failure);
    return step;
  }
  const std::size_t total =
      FrameHeader::kBytes + header.value().payload_length;
  if (pending.size() < total) return step;  // need more bytes

  const std::span<const std::uint8_t> payload =
      pending.subspan(FrameHeader::kBytes, header.value().payload_length);
  consumed_ += total;  // the frame is consumed either way below
  if (Crc32(payload) != header.value().payload_crc32) {
    step.failure =
        DecodeFailure{WireError(serve::ErrorCode::kCrcMismatch,
                                "payload CRC32 does not match the header"),
                      header.value().count, false};
    return step;
  }
  Frame frame;
  frame.header = header.value();
  frame.payload.assign(payload.begin(), payload.end());
  step.frame = std::move(frame);
  return step;
}

}  // namespace omg::net
