// The shipped domains' wire codecs (see net/codec.hpp for the contract).
//
// Encodings are flat little-endian field dumps in declaration order;
// variable-length members carry a u32 count prefix. Counts are bounded
// before allocation so a corrupted prefix cannot balloon the decoder.
#include "net/codec.hpp"

#include <utility>

#include "av/factory.hpp"
#include "common/check.hpp"
#include "ecg/factory.hpp"
#include "geometry/box.hpp"
#include "serve/domain_registry.hpp"
#include "tvnews/factory.hpp"
#include "video/factory.hpp"

namespace omg::net {

namespace {

/// Most entries a nested list (detections, faces...) may declare.
constexpr std::uint32_t kMaxListEntries = 1 << 16;

void EncodeBox(const geometry::Box2D& box, WireWriter& out) {
  out.F64(box.x_min);
  out.F64(box.y_min);
  out.F64(box.x_max);
  out.F64(box.y_max);
}

bool DecodeBox(WireReader& in, geometry::Box2D& box) {
  return in.F64(box.x_min) && in.F64(box.y_min) && in.F64(box.x_max) &&
         in.F64(box.y_max);
}

void EncodeDetection(const geometry::Detection& detection, WireWriter& out) {
  EncodeBox(detection.box, out);
  out.String(detection.label);
  out.F64(detection.confidence);
  out.I64(detection.truth_id);
}

bool DecodeDetection(WireReader& in, geometry::Detection& detection) {
  return DecodeBox(in, detection.box) && in.String(detection.label) &&
         in.F64(detection.confidence) && in.I64(detection.truth_id);
}

/// Reads a u32 list count and reserves `list` for it; false when the count
/// is missing or absurd.
template <typename T>
bool DecodeListCount(WireReader& in, std::vector<T>& list) {
  std::uint32_t count;
  if (!in.U32(count) || count > kMaxListEntries) return false;
  list.clear();
  list.reserve(count);
  list.resize(count);
  return true;
}

// ------------------------------------------------------------------ video ---

void EncodeVideo(const video::VideoExample& example, WireWriter& out) {
  out.U64(example.frame_index);
  out.F64(example.timestamp);
  out.U32(static_cast<std::uint32_t>(example.detections.size()));
  for (const geometry::Detection& detection : example.detections) {
    EncodeDetection(detection, out);
  }
}

bool DecodeVideo(WireReader& in, video::VideoExample& example) {
  std::uint64_t frame_index;
  if (!in.U64(frame_index) || !in.F64(example.timestamp)) return false;
  example.frame_index = frame_index;
  if (!DecodeListCount(in, example.detections)) return false;
  for (geometry::Detection& detection : example.detections) {
    if (!DecodeDetection(in, detection)) return false;
  }
  return true;
}

// --------------------------------------------------------------------- av ---

void EncodeAv(const av::AvExample& example, WireWriter& out) {
  out.U64(example.sample_index);
  out.F64(example.timestamp);
  out.String(example.scene);
  out.U32(static_cast<std::uint32_t>(example.camera.size()));
  for (const geometry::Detection& detection : example.camera) {
    EncodeDetection(detection, out);
  }
  out.U32(static_cast<std::uint32_t>(example.lidar_projected.size()));
  for (const geometry::Box2D& box : example.lidar_projected) {
    EncodeBox(box, out);
  }
}

bool DecodeAv(WireReader& in, av::AvExample& example) {
  std::uint64_t sample_index;
  if (!in.U64(sample_index) || !in.F64(example.timestamp) ||
      !in.String(example.scene)) {
    return false;
  }
  example.sample_index = sample_index;
  if (!DecodeListCount(in, example.camera)) return false;
  for (geometry::Detection& detection : example.camera) {
    if (!DecodeDetection(in, detection)) return false;
  }
  if (!DecodeListCount(in, example.lidar_projected)) return false;
  for (geometry::Box2D& box : example.lidar_projected) {
    if (!DecodeBox(in, box)) return false;
  }
  return true;
}

// -------------------------------------------------------------------- ecg ---

void EncodeEcg(const ecg::EcgExample& example, WireWriter& out) {
  out.String(example.record);
  out.F64(example.timestamp);
  out.U8(static_cast<std::uint8_t>(example.predicted));
}

bool DecodeEcg(WireReader& in, ecg::EcgExample& example) {
  std::uint8_t predicted;
  if (!in.String(example.record) || !in.F64(example.timestamp) ||
      !in.U8(predicted) || predicted >= ecg::kNumRhythms) {
    return false;
  }
  example.predicted = static_cast<ecg::Rhythm>(predicted);
  return true;
}

// ----------------------------------------------------------------- tvnews ---

void EncodeFace(const tvnews::FaceOutput& face, WireWriter& out) {
  EncodeBox(face.box, out);
  out.String(face.identity);
  out.String(face.gender);
  out.String(face.hair);
  out.I64(face.person_id);
  out.String(face.true_identity);
  out.String(face.true_gender);
  out.String(face.true_hair);
}

bool DecodeFace(WireReader& in, tvnews::FaceOutput& face) {
  return DecodeBox(in, face.box) && in.String(face.identity) &&
         in.String(face.gender) && in.String(face.hair) &&
         in.I64(face.person_id) && in.String(face.true_identity) &&
         in.String(face.true_gender) && in.String(face.true_hair);
}

void EncodeNews(const tvnews::NewsFrame& frame, WireWriter& out) {
  out.U64(frame.index);
  out.F64(frame.timestamp);
  out.I64(frame.scene_id);
  out.U32(static_cast<std::uint32_t>(frame.faces.size()));
  for (const tvnews::FaceOutput& face : frame.faces) EncodeFace(face, out);
}

bool DecodeNews(WireReader& in, tvnews::NewsFrame& frame) {
  std::uint64_t index;
  if (!in.U64(index) || !in.F64(frame.timestamp) ||
      !in.I64(frame.scene_id)) {
    return false;
  }
  frame.index = index;
  if (!DecodeListCount(in, frame.faces)) return false;
  for (tvnews::FaceOutput& face : frame.faces) {
    if (!DecodeFace(in, face)) return false;
  }
  return true;
}

/// Builds a PayloadCodec over one domain's typed encode/decode pair. The
/// decoder constructs the payload in place inside a fresh AnyExample — the
/// no-intermediate-copies path ObserveBatch consumes directly.
template <typename T>
PayloadCodec MakeCodec(void (*encode)(const T&, WireWriter&),
                       bool (*decode)(WireReader&, T&)) {
  PayloadCodec codec;
  codec.domain = std::string(serve::DomainTraits<T>::kDomain);
  codec.encode = [encode](const serve::AnyExample& example,
                          WireWriter& out) {
    encode(example.Get<T>(), out);
  };
  codec.decode = [decode](WireReader& in,
                          std::vector<serve::AnyExample>& out) {
    T payload;
    if (!decode(in, payload)) return false;
    out.emplace_back().Emplace<T>(std::move(payload));
    return true;
  };
  return codec;
}

}  // namespace

std::vector<std::uint8_t> EncodeBatch(
    const PayloadCodec& codec, std::span<const serve::AnyExample> batch) {
  WireWriter out;
  for (const serve::AnyExample& example : batch) {
    codec.encode(example, out);
  }
  return std::move(out.buffer());
}

serve::Result<std::vector<serve::AnyExample>> DecodeBatch(
    const PayloadCodec& codec, std::span<const std::uint8_t> payload,
    std::uint32_t count) {
  if (count > kMaxExamplesPerFrame) {
    return serve::Error{serve::ErrorCode::kMalformedPayload,
                        "frame claims " + std::to_string(count) +
                            " examples (limit " +
                            std::to_string(kMaxExamplesPerFrame) + ")"};
  }
  WireReader reader(payload);
  std::vector<serve::AnyExample> batch;
  batch.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (!codec.decode(reader, batch)) {
      return serve::Error{serve::ErrorCode::kMalformedPayload,
                          "'" + codec.domain + "' payload malformed at "
                              "example " + std::to_string(i) + " of " +
                              std::to_string(count)};
    }
  }
  if (!reader.AtEnd()) {
    return serve::Error{serve::ErrorCode::kMalformedPayload,
                        "'" + codec.domain + "' payload carries " +
                            std::to_string(reader.remaining()) +
                            " trailing bytes"};
  }
  return batch;
}

void RegisterDefaultCodecs(serve::DomainRegistry& registry) {
  const auto install = [&registry](PayloadCodec codec) {
    if (!registry.Has(codec.domain)) return;  // subset registries
    const std::string domain = codec.domain;
    registry.SetCodec(domain,
                      std::make_shared<const PayloadCodec>(std::move(codec)));
  };
  install(MakeCodec<video::VideoExample>(&EncodeVideo, &DecodeVideo));
  install(MakeCodec<av::AvExample>(&EncodeAv, &DecodeAv));
  install(MakeCodec<ecg::EcgExample>(&EncodeEcg, &DecodeEcg));
  install(MakeCodec<tvnews::NewsFrame>(&EncodeNews, &DecodeNews));
}

}  // namespace omg::net
