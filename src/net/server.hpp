// net::IngestServer — the multi-tenant network front door of the facade.
//
// One IngestServer turns a serve::Monitor into a network service: frames
// arrive over TCP (loopback) and/or a Unix-domain socket, are reassembled
// per connection (net::FrameAssembler), decoded through the domain
// registry's payload codecs, and handed straight to Monitor::ObserveBatch —
// decoded examples are constructed in place, never copied between buffers.
//
// Threading: one acceptor thread owns the listening sockets; N handler
// threads each run an epoll loop over their share of the connections
// (round-robin assignment at accept). All monitor calls happen on handler
// threads; replies are buffered per connection and drained under EPOLLOUT.
//
// Sessions and tenants: a connection must HELLO (tenant name + token)
// before binding streams or sending DATA. Configured tenants get token
// authentication and a token-bucket admission quota enforced *before* the
// monitor's shard queues; a DATA frame whose severity hint clears the
// tenant's shed floor rides through an exhausted quota (important traffic
// is never quota-shed). A server constructed with no tenants is *open*:
// any well-formed tenant name is accepted and nothing is quota-limited,
// but per-tenant accounting still applies.
//
// Accounting: every offered example lands in exactly one counter —
//   offered == admitted + monitor_shed + quota_rejected + decode_errors
// per tenant at the wire, and the monitor's own identity covers the
// admitted share (scored + dropped + errored + shed). Per-tenant counters
// are mirrored into the monitor's metrics registry under
// "tenant/<name>/<outcome>" named keys, which the Prometheus exporter
// renders as one tenant/outcome-labeled family.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "net/wire.hpp"
#include "serve/monitor.hpp"
#include "serve/result.hpp"

namespace omg::serve {
class DomainRegistry;
}  // namespace omg::serve

namespace omg::net {

/// One tenant's authentication and admission contract.
struct TenantOptions {
  /// Tenant id; must satisfy ValidTenantName (it becomes a metrics label).
  std::string name;
  /// Shared secret checked at HELLO (empty = no token required).
  std::string token;
  /// Admission quota, examples per second (0 = unlimited).
  double quota_eps = 0.0;
  /// Token-bucket burst capacity in examples (0 = one second of quota).
  double burst = 0.0;
  /// DATA frames with a severity hint >= this floor bypass an exhausted
  /// quota. The default (infinity, set at construction) never bypasses.
  double shed_floor = 0.0;
  /// True when shed_floor was explicitly configured.
  bool has_shed_floor = false;
};

/// Server construction options.
struct IngestServerOptions {
  /// Unix-domain socket path (empty = no UDS listener). An existing socket
  /// file at the path is replaced.
  std::string uds_path;
  /// Also listen on loopback TCP.
  bool tcp = false;
  /// TCP port (0 = ephemeral; read the bound port off Start()'s result).
  std::uint16_t tcp_port = 0;
  /// Connection-handler threads (each an epoll loop).
  std::size_t handler_threads = 2;
  /// Largest accepted frame payload, bytes.
  std::size_t max_frame_bytes = 4u << 20;
  /// Tenant roster; empty = open server (see the file comment).
  std::vector<TenantOptions> tenants;
};

/// Where a started server is reachable.
struct ServerEndpoints {
  std::string uds_path;     ///< empty when no UDS listener
  std::uint16_t tcp_port = 0;  ///< 0 when no TCP listener
};

/// One tenant's wire-level counters (examples).
struct TenantStats {
  std::uint64_t offered = 0;         ///< examples in received DATA frames
  std::uint64_t admitted = 0;        ///< handed to the monitor and queued
  std::uint64_t shed = 0;            ///< monitor admission shed (kShed)
  std::uint64_t quota_rejected = 0;  ///< refused by the tenant quota
  std::uint64_t decode_errors = 0;   ///< lost to malformed/corrupt frames
};

/// Point-in-time server counters.
struct IngestServerStats {
  std::uint64_t connections_seen = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t frames = 0;  ///< complete frames received (all types)
  /// Whole-server totals (includes pre-HELLO traffic no tenant owns).
  TenantStats totals;
  std::map<std::string, TenantStats> tenants;
};

/// The epoll-based TCP/UDS ingestion server; see the file comment.
class IngestServer {
 public:
  /// `monitor` and `domains` must outlive the server. Tenant options are
  /// validated here (names, quotas); violations throw CheckError.
  IngestServer(IngestServerOptions options, serve::Monitor& monitor,
               const serve::DomainRegistry& domains);
  /// Stops the server (idempotent with Stop).
  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  /// Makes a registered monitor stream bindable over the wire as
  /// `handle.name()`. A non-empty `tenant` restricts binding to that
  /// tenant (other tenants see kUnknownStream). Call before Start().
  void ExposeStream(const serve::StreamHandle& handle,
                    std::string tenant = {});

  /// Binds the listeners and spawns the acceptor + handler threads.
  /// Socket-layer failures (path too long, port busy) are typed
  /// kInvalidArgument errors, not aborts.
  serve::Result<ServerEndpoints> Start();

  /// Closes the listeners, drains the handler threads, and closes every
  /// connection. Idempotent; called by the destructor.
  void Stop();

  /// Point-in-time counters (callable while serving).
  IngestServerStats Stats() const;

  /// True when `name` is a legal tenant id: [A-Za-z0-9_-]{1,64}. Legal
  /// names need no escaping anywhere they surface (metrics labels, named
  /// counter keys, trace args).
  static bool ValidTenantName(std::string_view name);

 private:
  struct TenantState;
  struct ExposedStream;
  struct Connection;
  struct Handler;

  void AcceptLoop();
  void HandlerLoop(Handler& handler);
  /// Accepts everything pending on `listen_fd`, assigning connections to
  /// handlers round-robin.
  void DrainAccept(int listen_fd, bool uds);
  /// Adopts connections queued on `handler` into its epoll set.
  void AdoptPending(Handler& handler);
  /// Reads until EAGAIN, reassembling and processing frames. Returns false
  /// when the connection must close.
  bool HandleReadable(Handler& handler, Connection& conn);
  /// Dispatches one complete frame. Returns false to close the connection.
  bool ProcessFrame(Handler& handler, Connection& conn, Frame frame);
  bool OnHello(Handler& handler, Connection& conn, const Frame& frame);
  bool OnBindStream(Handler& handler, Connection& conn, const Frame& frame);
  void OnData(Connection& conn, const Frame& frame);
  /// Queues a reply frame and tries to flush it. Returns false when the
  /// connection broke mid-write.
  bool SendFrame(Handler& handler, Connection& conn, FrameType type,
                 std::uint64_t seq, std::span<const std::uint64_t> values,
                 const serve::Error* error);
  /// Writes buffered outbound bytes; arms/disarms EPOLLOUT as needed.
  bool FlushOutbound(Handler& handler, Connection& conn);
  void CloseConnection(Handler& handler, Connection& conn);
  /// Where an offered example ended up, wire-side.
  enum class WireOutcome {
    kOffered,
    kAdmitted,
    kShed,
    kQuotaRejected,
    kDecodeError,
  };
  /// Bumps the global counter, the connection's tenant counter, and the
  /// monitor's "tenant/<name>/<outcome>" named metric.
  void Account(Connection& conn, WireOutcome outcome, std::uint64_t examples);
  /// Account(kDecodeError) plus a kWireReject trace carrying `code` — the
  /// path for examples lost to malformed frames or refused batches.
  void AccountReject(Connection& conn, std::uint64_t examples,
                     serve::ErrorCode code);
  /// Resolves (open servers: creates) the tenant for a HELLO.
  TenantState* ResolveTenant(const std::string& name);

  IngestServerOptions options_;
  serve::Monitor& monitor_;
  const serve::DomainRegistry& domains_;

  mutable Mutex tenants_mutex_;  ///< map shape (open-server inserts)
  std::map<std::string, std::unique_ptr<TenantState>> tenants_
      OMG_GUARDED_BY(tenants_mutex_);
  /// Written only before Start() (ExposeStream checks), read lock-free by
  /// handler threads afterwards — immutable-after-start, so unguarded.
  std::map<std::string, ExposedStream> streams_;

  std::vector<std::unique_ptr<Handler>> handlers_;
  std::thread acceptor_;
  int uds_listen_fd_ = -1;
  int tcp_listen_fd_ = -1;
  int stop_event_fd_ = -1;  ///< wakes the acceptor
  bool started_ = false;
  std::atomic<bool> stopping_{false};

  std::atomic<std::uint64_t> next_conn_id_{1};
  std::atomic<std::uint64_t> next_session_{1};
  std::atomic<std::uint64_t> connections_seen_{0};
  std::atomic<std::uint64_t> connections_active_{0};
  std::atomic<std::uint64_t> frames_{0};
  std::atomic<std::size_t> next_handler_{0};

  // Wire-outcome totals (cover pre-HELLO traffic no tenant owns).
  std::atomic<std::uint64_t> offered_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> quota_rejected_{0};
  std::atomic<std::uint64_t> decode_errors_{0};

  std::shared_ptr<obs::Tracer> tracer_;  ///< cached off the monitor
};

}  // namespace omg::net
