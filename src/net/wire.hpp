// The OMG ingestion wire format: length-prefixed binary frames.
//
// Every message between a net client and the IngestServer is one *frame*:
// a fixed 64-byte little-endian header followed by `payload_length` payload
// bytes. The header carries everything routing needs — frame type, tenant
// session, stream binding, domain tag, example count — so a receiver can
// account for a frame (and skip it) without decoding the payload:
//
//   offset  size  field
//        0     4  magic          "OMGW"
//        4     2  version        kWireVersion (2)
//        6     2  type           FrameType
//        8     8  seq            sender-assigned; echoed by ACK/ERROR
//       16     8  session        tenant session id (0 before HELLO)
//       24     8  stream         stream binding id (DATA), else 0
//       32     8  domain         zero-padded ASCII domain tag ("video")
//       40     4  count          examples in a DATA payload
//       44     4  payload_length payload bytes following the header
//       48     4  payload_crc32  IEEE CRC32 of the payload bytes
//       52     8  hint           bit-cast f64 admission severity hint
//       60     4  header_crc32   IEEE CRC32 of header bytes [0, 60)
//       64     …  payload        codec- or control-encoded (see codec.hpp)
//
// Version 2 added header_crc32 (the trailing header word, covering every
// header byte before it) so a receiver can tell header corruption from
// payload corruption: without it, a flipped bit in `count` silently skewed
// the per-tenant decode-error accounting because the payload-CRC failure
// path charged the corrupted count as lost examples.
//
// Decoding never aborts: one-shot decodes return serve::Result, and the
// streaming FrameAssembler reports typed DecodeFailures (truncated frame,
// bad magic, CRC mismatch, …) per docs/WIRE_PROTOCOL.md. A failure that
// leaves the framing trustworthy (payload CRC mismatch under an intact,
// header-CRC-verified length) skips one frame and keeps the connection;
// one that does not (bad magic, bad version, unknown type, header CRC
// mismatch, oversized length) is fatal and poisons the assembler.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "serve/result.hpp"

namespace omg::net {

/// First four bytes of every frame.
inline constexpr std::uint8_t kWireMagic[4] = {'O', 'M', 'G', 'W'};

/// Wire-format version this build speaks (negotiated at HELLO: both peers
/// must agree exactly). Version 2 grew the header from 60 to 64 bytes by
/// appending header_crc32.
inline constexpr std::uint16_t kWireVersion = 2;

/// Message vocabulary. Values cross the wire; append, never renumber.
enum class FrameType : std::uint16_t {
  kHello = 1,        ///< client -> server: tenant name + token (payload)
  kBindStream = 2,   ///< client -> server: bind a stream name (payload)
  kData = 3,         ///< client -> server: one example batch (codec payload)
  kFlush = 4,        ///< client -> server: drain the monitor, then ACK
  kStats = 5,        ///< client -> server: flush + reply server counters
  kGoodbye = 6,      ///< client -> server: orderly close after ACK
  kAck = 7,          ///< server -> client: success reply (payload: values)
  kError = 8,        ///< server -> client: typed failure (code + message)
  kTraceHeader = 9,  ///< trace files only (src/replay): leading metadata
                     ///< frame; a live server ignores it on receive
};

/// Stable snake_case name ("hello", "data", ...).
std::string_view FrameTypeName(FrameType type);

/// True when `type`'s integer value is in the FrameType vocabulary.
bool KnownFrameType(std::uint16_t type);

/// IEEE 802.3 CRC32 (table-based, reflected) over `bytes`.
std::uint32_t Crc32(std::span<const std::uint8_t> bytes);

/// The fixed frame header; see the file comment for the wire layout.
struct FrameHeader {
  /// Encoded size in bytes.
  static constexpr std::size_t kBytes = 64;
  /// Bytes covered by header_crc32 (everything before it).
  static constexpr std::size_t kCrcCoveredBytes = 60;
  /// Longest domain tag the fixed field can carry.
  static constexpr std::size_t kDomainBytes = 8;

  std::uint16_t version = kWireVersion;
  FrameType type = FrameType::kData;
  std::uint64_t seq = 0;
  std::uint64_t session = 0;
  std::uint64_t stream = 0;
  char domain[kDomainBytes] = {};
  std::uint32_t count = 0;
  std::uint32_t payload_length = 0;
  std::uint32_t payload_crc32 = 0;
  /// Admission severity hint, bit-cast to preserve the exact double.
  std::uint64_t hint_bits = 0;
  /// IEEE CRC32 of the first kCrcCoveredBytes encoded header bytes; filled
  /// by EncodeHeader, verified by DecodeHeader. Keeps the framing fields —
  /// above all `count` and `payload_length` — trustworthy, so accounting
  /// never charges a corrupted example count.
  std::uint32_t header_crc32 = 0;

  /// The domain tag without trailing NULs (empty for control frames).
  std::string_view domain_tag() const;
  /// Installs `tag` (must fit kDomainBytes; longer tags throw CheckError —
  /// registries reject such domain names before they reach the wire).
  void set_domain_tag(std::string_view tag);

  double hint() const;
  void set_hint(double value);
};

/// Little-endian append-only encode buffer.
class WireWriter {
 public:
  void U8(std::uint8_t value) { buffer_.push_back(value); }
  void U16(std::uint16_t value);
  void U32(std::uint32_t value);
  void U64(std::uint64_t value);
  void I64(std::int64_t value) { U64(static_cast<std::uint64_t>(value)); }
  void F64(double value);
  /// u32 byte length + raw bytes.
  void String(std::string_view value);
  void Bytes(const void* data, std::size_t size);

  std::span<const std::uint8_t> bytes() const { return buffer_; }
  std::vector<std::uint8_t>& buffer() { return buffer_; }
  std::size_t size() const { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Bounds-checked little-endian cursor over a byte span. Every read returns
/// false (consuming nothing) on underrun instead of throwing — malformed
/// payloads are routine input on a server.
class WireReader {
 public:
  /// Longest string a String() read accepts; caps allocation from a
  /// corrupted length prefix.
  static constexpr std::size_t kMaxStringBytes = 1 << 16;

  explicit WireReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  bool U8(std::uint8_t& value);
  bool U16(std::uint16_t& value);
  bool U32(std::uint32_t& value);
  bool U64(std::uint64_t& value);
  bool I64(std::int64_t& value);
  bool F64(double& value);
  bool String(std::string& value);

  std::size_t remaining() const { return bytes_.size() - offset_; }
  bool AtEnd() const { return offset_ == bytes_.size(); }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t offset_ = 0;
};

/// Appends `header`'s kBytes encoding (magic included) to `out`, computing
/// header_crc32 over the first kCrcCoveredBytes it appends.
void EncodeHeader(const FrameHeader& header, WireWriter& out);

/// One whole frame: `header` with payload_length/payload_crc32 filled from
/// `payload`, followed by the payload bytes.
std::vector<std::uint8_t> EncodeFrame(FrameHeader header,
                                      std::span<const std::uint8_t> payload);

/// Decodes the leading kBytes of `bytes` into a header. Typed errors:
/// kTruncatedFrame, kBadMagic, kBadVersion, kUnknownFrameType, and
/// kCrcMismatch when the header's own CRC32 fails.
serve::Result<FrameHeader> DecodeHeader(std::span<const std::uint8_t> bytes);

/// One decoded frame.
struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

/// One-shot decode of a complete frame (header + payload, CRC verified).
/// Adds kOversizedFrame / kCrcMismatch to DecodeHeader's errors;
/// `max_frame_bytes` bounds the accepted payload length (0 = unlimited).
serve::Result<Frame> DecodeFrame(std::span<const std::uint8_t> bytes,
                                 std::size_t max_frame_bytes = 0);

/// One streaming decode failure (see FrameAssembler::Next).
struct DecodeFailure {
  serve::Error error;
  /// header.count when the header passed its own CRC (examples the failed
  /// frame verifiably claimed to carry — feeds wire-rejection accounting),
  /// else 0. A corrupted header cannot inject a bogus count here: header
  /// corruption fails the header CRC and reports 0.
  std::uint32_t lost_examples = 0;
  /// True when the byte stream can no longer be framed (bad magic, bad
  /// version, unknown type, header CRC mismatch, oversized length): the
  /// connection must be closed. The one non-fatal failure, payload CRC
  /// mismatch, skips the frame — its header-CRC-verified length prefix is
  /// still trustworthy — and recovers.
  bool fatal = false;
};

/// Incremental per-connection frame reassembly: Feed() arbitrary read()
/// slices, then drain complete frames with Next(). Handles frames split
/// across any byte boundary, including mid-header.
class FrameAssembler {
 public:
  /// `max_frame_bytes` bounds a single frame's payload (a corrupt or
  /// hostile length prefix must not buffer unbounded memory).
  explicit FrameAssembler(std::size_t max_frame_bytes);

  /// Appends raw received bytes.
  void Feed(std::span<const std::uint8_t> bytes);

  /// Outcome of one Next() call: exactly one of {frame, failure} is set,
  /// or neither when more bytes are needed.
  struct Step {
    std::optional<Frame> frame;
    std::optional<DecodeFailure> failure;
    bool NeedMore() const { return !frame && !failure; }
  };

  /// Extracts the next complete frame (or failure) from the buffered
  /// bytes. After a fatal failure every subsequent call repeats it.
  Step Next();

  /// Bytes buffered but not yet consumed by Next().
  std::size_t buffered() const { return buffer_.size() - consumed_; }

  /// True when a partial frame is pending (a close now would truncate it).
  bool MidFrame() const { return buffered() > 0; }

 private:
  std::size_t max_frame_bytes_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  ///< prefix of buffer_ already handed out
  std::optional<DecodeFailure> poisoned_;
};

}  // namespace omg::net
