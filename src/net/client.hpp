// net wire clients: a blocking per-connection client and a paced
// multi-connection load generator.
//
// ClientConnection speaks the docs/WIRE_PROTOCOL.md frame vocabulary over
// one TCP or UDS connection with blocking I/O: control calls (Hello, Bind,
// Flush, Stats, Goodbye) send one frame and wait for the matching ACK/ERROR
// (matched by echoed seq); DATA sends are fire-and-forget. Every failure is
// a typed serve::Result error — an ERROR reply surfaces as its wire code.
//
// RunLoadClient drives an IngestServer the way the saturation bench drives
// the in-process facade: N concurrent connections, each bound to one
// stream spec (round-robin), each offering examples at a paced rate in
// fixed-size batches, then a FLUSH + STATS pass that checks the wire
// accounting identity:
//
//   offered == scored + shed + dropped + errored
//              + quota_rejected + decode_errors
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "net/codec.hpp"
#include "net/wire.hpp"
#include "serve/any_example.hpp"
#include "serve/result.hpp"

namespace omg::serve {
class DomainRegistry;
}  // namespace omg::serve

namespace omg::net {

/// One blocking wire connection; see the file comment. Move-only; the
/// destructor closes the socket.
class ClientConnection {
 public:
  ClientConnection() = default;
  ~ClientConnection() { Close(); }
  ClientConnection(ClientConnection&& other) noexcept;
  ClientConnection& operator=(ClientConnection&& other) noexcept;
  ClientConnection(const ClientConnection&) = delete;
  ClientConnection& operator=(const ClientConnection&) = delete;

  /// Connects to an IngestServer's Unix-domain socket.
  static serve::Result<ClientConnection> ConnectUds(const std::string& path);
  /// Connects to an IngestServer's TCP listener.
  static serve::Result<ClientConnection> ConnectTcp(const std::string& host,
                                                    std::uint16_t port);

  /// Authenticates as `tenant`; returns the server-assigned session id.
  serve::Result<std::uint64_t> Hello(std::string_view tenant,
                                     std::string_view token);

  /// Binds exposed stream `stream` of `domain`; returns the binding id to
  /// put in DATA headers.
  serve::Result<std::uint64_t> BindStream(std::string_view domain,
                                          std::string_view stream);

  /// Sends one DATA frame from a pre-encoded payload (fire-and-forget;
  /// success means the bytes were written, not that the server admitted
  /// them — see Stats()). `count` must match the payload's example count.
  serve::Result<bool> SendEncoded(std::uint64_t binding,
                                  std::string_view domain,
                                  std::uint32_t count,
                                  std::span<const std::uint8_t> payload,
                                  double hint = 0.0);

  /// Encodes `batch` with `codec` and sends it as one DATA frame.
  serve::Result<bool> SendBatch(const PayloadCodec& codec,
                                std::uint64_t binding,
                                std::span<const serve::AnyExample> batch,
                                double hint = 0.0);

  /// Drains the server's monitor (server-side Monitor::Flush), then ACKs.
  serve::Result<bool> Flush();

  /// Flushes, then returns the server's 8 accounting counters:
  /// [offered, admitted, quota_rejected, decode_errors,
  ///  scored, shed, dropped, errored] (examples).
  serve::Result<std::vector<std::uint64_t>> Stats();

  /// Orderly shutdown: GOODBYE, await the ACK, close.
  serve::Result<bool> Goodbye();

  /// Closes the socket (idempotent; in-flight frames are abandoned).
  void Close();

  bool connected() const { return fd_ >= 0; }
  /// Total frame bytes written (headers included).
  std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  explicit ClientConnection(int fd) : fd_(fd) {}

  serve::Result<bool> WriteAll(std::span<const std::uint8_t> bytes);
  /// Reads one whole reply frame (blocking).
  serve::Result<Frame> ReadReply();
  /// Sends a control frame and decodes the matching ACK's values (an ERROR
  /// reply becomes its typed error).
  serve::Result<std::vector<std::uint64_t>> Roundtrip(
      FrameType type, std::span<const std::uint8_t> payload);

  int fd_ = -1;
  std::uint64_t session_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t bytes_sent_ = 0;
};

/// One stream a load connection drives.
struct LoadStreamSpec {
  std::string tenant;
  std::string token;
  std::string stream;  ///< exposed stream name
  std::string domain;  ///< the stream's domain tag
  double hint = 0.0;   ///< DATA severity hint
};

/// RunLoadClient configuration.
struct LoadClientOptions {
  /// Connect target: UDS when `uds_path` is set, else TCP.
  std::string uds_path;
  std::string tcp_host = "127.0.0.1";
  std::uint16_t tcp_port = 0;
  /// Stream specs; connection i drives streams[i % streams.size()].
  std::vector<LoadStreamSpec> streams;
  std::size_t connections = 1;
  /// Offered examples/second per connection (0 = unpaced, send flat out).
  double rate_eps = 0.0;
  /// Examples per DATA frame.
  std::size_t batch = 32;
  /// Examples offered per connection (rounded down to whole batches,
  /// minimum one batch).
  std::size_t examples_per_connection = 1024;
  /// After the drive: FLUSH everywhere, STATS once, check the identity.
  bool verify = true;
};

/// What a load run did and what the server said about it.
struct LoadReport {
  std::uint64_t offered = 0;     ///< client-side examples sent
  std::uint64_t wire_bytes = 0;  ///< frame bytes written (all connections)
  double elapsed_seconds = 0.0;
  std::uint64_t connection_errors = 0;  ///< connections that died mid-run

  // Server STATS counters (zeros when verify was off).
  std::uint64_t server_offered = 0;
  std::uint64_t server_admitted = 0;
  std::uint64_t server_quota_rejected = 0;
  std::uint64_t server_decode_errors = 0;
  std::uint64_t scored = 0;
  std::uint64_t shed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t errored = 0;

  /// True when offered == scored + shed + dropped + errored +
  /// quota_rejected + decode_errors held exactly.
  bool reconciled = false;
};

/// Drives a server per `options`; see the file comment. Fails fast (typed)
/// when no connection can be established or a spec names a domain without
/// a codec.
serve::Result<LoadReport> RunLoadClient(const LoadClientOptions& options,
                                        const serve::DomainRegistry& domains);

/// Deterministic synthetic example for `domain` ("video", "av", "ecg",
/// "tvnews"), varying with `index`. kUnknownDomain for anything else.
/// Forwards to common::MakeSyntheticExample (src/common/example_gen.hpp),
/// the shared definition all synthetic producers draw from.
serve::Result<serve::AnyExample> MakeSyntheticExample(std::string_view domain,
                                                      std::size_t index);

}  // namespace omg::net
