#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/check.hpp"
#include "common/example_gen.hpp"
#include "obs/clock.hpp"
#include "serve/domain_registry.hpp"

namespace omg::net {

namespace {

serve::Error Errno(const std::string& what) {
  return serve::Error{serve::ErrorCode::kInvalidArgument,
                      what + ": " + std::strerror(errno)};
}

}  // namespace

// ------------------------------------------------------ ClientConnection ---

ClientConnection::ClientConnection(ClientConnection&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      session_(other.session_),
      next_seq_(other.next_seq_),
      bytes_sent_(other.bytes_sent_) {}

ClientConnection& ClientConnection::operator=(
    ClientConnection&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    session_ = other.session_;
    next_seq_ = other.next_seq_;
    bytes_sent_ = other.bytes_sent_;
  }
  return *this;
}

void ClientConnection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

serve::Result<ClientConnection> ClientConnection::ConnectUds(
    const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return serve::Error{serve::ErrorCode::kInvalidArgument,
                        "UDS path '" + path + "' exceeds sockaddr_un"};
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket(AF_UNIX)");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    const serve::Error error = Errno("connect '" + path + "'");
    ::close(fd);
    return error;
  }
  return ClientConnection(fd);
}

serve::Result<ClientConnection> ClientConnection::ConnectTcp(
    const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return serve::Error{serve::ErrorCode::kInvalidArgument,
                        "'" + host + "' is not an IPv4 address"};
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket(AF_INET)");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    const serve::Error error =
        Errno("connect " + host + ":" + std::to_string(port));
    ::close(fd);
    return error;
  }
  return ClientConnection(fd);
}

serve::Result<bool> ClientConnection::WriteAll(
    std::span<const std::uint8_t> bytes) {
  if (fd_ < 0) {
    return serve::Error{serve::ErrorCode::kInvalidArgument,
                        "connection is closed"};
  }
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  bytes_sent_ += bytes.size();
  return true;
}

serve::Result<Frame> ClientConnection::ReadReply() {
  const auto read_exact = [this](std::uint8_t* out,
                                 std::size_t size) -> serve::Result<bool> {
    std::size_t got = 0;
    while (got < size) {
      const ssize_t n = ::recv(fd_, out + got, size - got, 0);
      if (n == 0) {
        return serve::Error{serve::ErrorCode::kTruncatedFrame,
                            "server closed mid-reply"};
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        return Errno("recv");
      }
      got += static_cast<std::size_t>(n);
    }
    return true;
  };
  std::uint8_t header_bytes[FrameHeader::kBytes];
  serve::Result<bool> io = read_exact(header_bytes, sizeof(header_bytes));
  if (!io.ok()) return io.error();
  serve::Result<FrameHeader> header =
      DecodeHeader({header_bytes, sizeof(header_bytes)});
  if (!header.ok()) return header.error();
  Frame frame;
  frame.header = header.value();
  frame.payload.resize(frame.header.payload_length);
  if (!frame.payload.empty()) {
    io = read_exact(frame.payload.data(), frame.payload.size());
    if (!io.ok()) return io.error();
  }
  if (Crc32(frame.payload) != frame.header.payload_crc32) {
    return serve::Error{serve::ErrorCode::kCrcMismatch,
                        "reply payload CRC32 mismatch"};
  }
  return frame;
}

serve::Result<std::vector<std::uint64_t>> ClientConnection::Roundtrip(
    FrameType type, std::span<const std::uint8_t> payload) {
  FrameHeader header;
  header.type = type;
  header.seq = next_seq_++;
  header.session = session_;
  const serve::Result<bool> sent =
      WriteAll(EncodeFrame(header, payload));
  if (!sent.ok()) return sent.error();
  serve::Result<Frame> reply = ReadReply();
  if (!reply.ok()) return reply.error();
  if (reply.value().header.seq != header.seq) {
    return serve::Error{serve::ErrorCode::kInvalidArgument,
                        "reply seq does not echo the request"};
  }
  WireReader reader(reply.value().payload);
  if (reply.value().header.type == FrameType::kError) {
    std::uint16_t code = 0;
    std::string message;
    if (!reader.U16(code) || !reader.String(message)) {
      return serve::Error{serve::ErrorCode::kMalformedPayload,
                          "ERROR reply payload malformed"};
    }
    return serve::Error{static_cast<serve::ErrorCode>(code),
                        std::move(message)};
  }
  if (reply.value().header.type != FrameType::kAck) {
    return serve::Error{serve::ErrorCode::kUnknownFrameType,
                        "reply is neither ACK nor ERROR"};
  }
  std::uint32_t count = 0;
  if (!reader.U32(count)) {
    return serve::Error{serve::ErrorCode::kMalformedPayload,
                        "ACK payload malformed"};
  }
  std::vector<std::uint64_t> values(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (!reader.U64(values[i])) {
      return serve::Error{serve::ErrorCode::kMalformedPayload,
                          "ACK payload truncated"};
    }
  }
  return values;
}

serve::Result<std::uint64_t> ClientConnection::Hello(
    std::string_view tenant, std::string_view token) {
  WireWriter payload;
  payload.String(tenant);
  payload.String(token);
  serve::Result<std::vector<std::uint64_t>> values =
      Roundtrip(FrameType::kHello, payload.bytes());
  if (!values.ok()) return values.error();
  if (values.value().size() != 1) {
    return serve::Error{serve::ErrorCode::kMalformedPayload,
                        "HELLO ack carries no session id"};
  }
  session_ = values.value()[0];
  return session_;
}

serve::Result<std::uint64_t> ClientConnection::BindStream(
    std::string_view domain, std::string_view stream) {
  WireWriter payload;
  payload.String(domain);
  payload.String(stream);
  serve::Result<std::vector<std::uint64_t>> values =
      Roundtrip(FrameType::kBindStream, payload.bytes());
  if (!values.ok()) return values.error();
  if (values.value().size() != 1) {
    return serve::Error{serve::ErrorCode::kMalformedPayload,
                        "BIND ack carries no binding id"};
  }
  return values.value()[0];
}

serve::Result<bool> ClientConnection::SendEncoded(
    std::uint64_t binding, std::string_view domain, std::uint32_t count,
    std::span<const std::uint8_t> payload, double hint) {
  FrameHeader header;
  header.type = FrameType::kData;
  header.seq = next_seq_++;
  header.session = session_;
  header.stream = binding;
  header.set_domain_tag(domain);
  header.count = count;
  header.set_hint(hint);
  return WriteAll(EncodeFrame(header, payload));
}

serve::Result<bool> ClientConnection::SendBatch(
    const PayloadCodec& codec, std::uint64_t binding,
    std::span<const serve::AnyExample> batch, double hint) {
  const std::vector<std::uint8_t> payload = EncodeBatch(codec, batch);
  return SendEncoded(binding, codec.domain,
                     static_cast<std::uint32_t>(batch.size()), payload,
                     hint);
}

serve::Result<bool> ClientConnection::Flush() {
  WireWriter payload;
  serve::Result<std::vector<std::uint64_t>> values =
      Roundtrip(FrameType::kFlush, payload.bytes());
  if (!values.ok()) return values.error();
  return true;
}

serve::Result<std::vector<std::uint64_t>> ClientConnection::Stats() {
  WireWriter payload;
  serve::Result<std::vector<std::uint64_t>> values =
      Roundtrip(FrameType::kStats, payload.bytes());
  if (!values.ok()) return values.error();
  if (values.value().size() != 8) {
    return serve::Error{serve::ErrorCode::kMalformedPayload,
                        "STATS ack does not carry 8 counters"};
  }
  return values;
}

serve::Result<bool> ClientConnection::Goodbye() {
  WireWriter payload;
  serve::Result<std::vector<std::uint64_t>> values =
      Roundtrip(FrameType::kGoodbye, payload.bytes());
  Close();
  if (!values.ok()) return values.error();
  return true;
}

// ------------------------------------------------------------- synthetics ---

serve::Result<serve::AnyExample> MakeSyntheticExample(
    std::string_view domain, std::size_t index) {
  // The shared generator module owns the definition so the load client,
  // harness, bench, and trace recorder all emit identical synthetics.
  return common::MakeSyntheticExample(domain, index);
}

// ------------------------------------------------------------ load client ---

namespace {

serve::Result<ClientConnection> ConnectPer(const LoadClientOptions& options) {
  if (!options.uds_path.empty()) {
    return ClientConnection::ConnectUds(options.uds_path);
  }
  return ClientConnection::ConnectTcp(options.tcp_host, options.tcp_port);
}

/// One connection's worth of work, run on its own thread.
struct ConnectionDrive {
  ClientConnection conn;
  const LoadStreamSpec* spec = nullptr;
  std::vector<std::uint8_t> payload;  ///< pre-encoded batch template
  std::uint32_t batch = 0;
  std::size_t frames = 0;
  std::uint64_t offered = 0;
  bool failed = false;
  std::string failure;
};

}  // namespace

serve::Result<LoadReport> RunLoadClient(const LoadClientOptions& options,
                                        const serve::DomainRegistry& domains) {
  if (options.streams.empty()) {
    return serve::Error{serve::ErrorCode::kInvalidArgument,
                        "load client needs at least one stream spec"};
  }
  if (options.connections == 0 || options.batch == 0) {
    return serve::Error{serve::ErrorCode::kInvalidArgument,
                        "load client needs connections >= 1 and batch >= 1"};
  }
  // Set everything up front — connect, authenticate, bind, pre-encode each
  // spec's batch payload — so the drive phase is pure sends and failures
  // surface before any load is offered.
  std::vector<ConnectionDrive> drives(options.connections);
  std::vector<std::uint64_t> bindings(options.connections, 0);
  for (std::size_t i = 0; i < options.connections; ++i) {
    ConnectionDrive& drive = drives[i];
    drive.spec = &options.streams[i % options.streams.size()];
    const PayloadCodec* codec = domains.CodecFor(drive.spec->domain);
    if (codec == nullptr) {
      return serve::Error{serve::ErrorCode::kUnknownDomain,
                          "domain '" + drive.spec->domain +
                              "' has no payload codec"};
    }
    serve::Result<ClientConnection> conn = ConnectPer(options);
    if (!conn.ok()) return conn.error();
    drive.conn = std::move(conn.value());
    serve::Result<std::uint64_t> session =
        drive.conn.Hello(drive.spec->tenant, drive.spec->token);
    if (!session.ok()) return session.error();
    serve::Result<std::uint64_t> binding =
        drive.conn.BindStream(drive.spec->domain, drive.spec->stream);
    if (!binding.ok()) return binding.error();
    bindings[i] = binding.value();
    std::vector<serve::AnyExample> batch;
    batch.reserve(options.batch);
    for (std::size_t j = 0; j < options.batch; ++j) {
      serve::Result<serve::AnyExample> example =
          MakeSyntheticExample(drive.spec->domain, i * options.batch + j);
      if (!example.ok()) return example.error();
      batch.push_back(std::move(example.value()));
    }
    drive.payload = EncodeBatch(*codec, batch);
    drive.batch = static_cast<std::uint32_t>(options.batch);
    drive.frames = std::max<std::size_t>(
        1, options.examples_per_connection / options.batch);
  }

  const std::uint64_t start_ns = obs::Clock::NowNs();
  std::vector<std::thread> threads;
  threads.reserve(options.connections);
  for (std::size_t i = 0; i < options.connections; ++i) {
    threads.emplace_back([&, i] {
      ConnectionDrive& drive = drives[i];
      const double interval_s =
          options.rate_eps > 0.0
              ? static_cast<double>(options.batch) / options.rate_eps
              : 0.0;
      std::uint64_t next_ns = obs::Clock::NowNs();
      for (std::size_t f = 0; f < drive.frames; ++f) {
        if (interval_s > 0.0) {
          const std::uint64_t now_ns = obs::Clock::NowNs();
          if (next_ns > now_ns) {
            std::this_thread::sleep_for(
                std::chrono::nanoseconds(next_ns - now_ns));
          }
          next_ns += static_cast<std::uint64_t>(interval_s * 1e9);
        }
        const serve::Result<bool> sent = drive.conn.SendEncoded(
            bindings[i], drive.spec->domain, drive.batch, drive.payload,
            drive.spec->hint);
        if (!sent.ok()) {
          drive.failed = true;
          drive.failure = sent.error().message;
          return;
        }
        drive.offered += drive.batch;
      }
      // Per-connection FLUSH: its ACK proves every DATA frame this
      // connection sent was processed (the server handles one connection's
      // frames in order), so the later STATS pass races with nothing.
      const serve::Result<bool> flushed = drive.conn.Flush();
      if (!flushed.ok()) {
        drive.failed = true;
        drive.failure = flushed.error().message;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  LoadReport report;
  report.elapsed_seconds =
      obs::Clock::ToSeconds(obs::Clock::ElapsedNs(start_ns, obs::Clock::NowNs()));
  for (ConnectionDrive& drive : drives) {
    report.offered += drive.offered;
    report.wire_bytes += drive.conn.bytes_sent();
    if (drive.failed) ++report.connection_errors;
  }
  if (options.verify && report.connection_errors == 0) {
    serve::Result<std::vector<std::uint64_t>> stats = drives[0].conn.Stats();
    if (!stats.ok()) return stats.error();
    const std::vector<std::uint64_t>& values = stats.value();
    report.server_offered = values[0];
    report.server_admitted = values[1];
    report.server_quota_rejected = values[2];
    report.server_decode_errors = values[3];
    report.scored = values[4];
    report.shed = values[5];
    report.dropped = values[6];
    report.errored = values[7];
    report.reconciled =
        report.server_offered == report.offered &&
        report.offered == report.scored + report.shed + report.dropped +
                              report.errored + report.server_quota_rejected +
                              report.server_decode_errors;
  }
  for (ConnectionDrive& drive : drives) {
    if (drive.conn.connected()) {
      (void)drive.conn.Goodbye();
    }
  }
  return report;
}

}  // namespace omg::net
