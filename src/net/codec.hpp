// Per-domain payload codecs: typed examples <-> DATA-frame payload bytes.
//
// A PayloadCodec is the wire-format sibling of a DomainTraits
// specialization: where the traits teach serve::AnyExample to *hold* a
// domain's example type, the codec teaches the net layer to *transport* it.
// Codecs live in the serve::DomainRegistry next to the suite builders
// (DomainRegistry::SetCodec), so one registry answers both "how do I score
// this domain" and "how do I decode its frames".
//
// Round-trip guarantee: for every shipped domain, Decode(Encode(batch))
// reproduces the batch field-for-field under the same wire version
// (tests/test_net.cpp pins this). Decoding never aborts — malformed bytes
// are a typed kMalformedPayload, a foreign domain tag kUnknownDomain.
//
// Decoded examples are constructed straight into AnyExample holders
// (Emplace), so a received batch goes WireReader -> AnyExample vector ->
// Monitor::ObserveBatch with no intermediate typed copies.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "net/wire.hpp"
#include "serve/any_example.hpp"
#include "serve/result.hpp"

namespace omg::serve {
class DomainRegistry;
}  // namespace omg::serve

namespace omg::net {

/// Most examples one DATA frame may carry (bounds decoder allocation from
/// a corrupted count; far above any real batch — shard queues cap batches
/// orders of magnitude earlier).
inline constexpr std::uint32_t kMaxExamplesPerFrame = 1 << 20;

/// One domain's wire codec; see the file comment.
struct PayloadCodec {
  /// The DomainTraits tag this codec transports ("video").
  std::string domain;
  /// Appends `example`'s payload encoding to `out`. The example must hold
  /// this codec's payload type (a foreign example throws CheckError —
  /// senders validate domains before encoding).
  std::function<void(const serve::AnyExample&, WireWriter&)> encode;
  /// Decodes one example from `in`, appending it to `out`. Returns false
  /// on malformed bytes, leaving `out`'s earlier entries intact.
  std::function<bool(WireReader&, std::vector<serve::AnyExample>&)> decode;
};

/// Encodes `batch` (all of `codec`'s domain) as a DATA payload.
std::vector<std::uint8_t> EncodeBatch(
    const PayloadCodec& codec, std::span<const serve::AnyExample> batch);

/// Decodes a DATA payload of exactly `count` examples. Typed errors:
/// kMalformedPayload (bad bytes, trailing garbage, or an absurd count).
serve::Result<std::vector<serve::AnyExample>> DecodeBatch(
    const PayloadCodec& codec, std::span<const std::uint8_t> payload,
    std::uint32_t count);

/// Installs the shipped codecs (video, av, ecg, tvnews) on their registered
/// domains. serve::MakeDefaultDomainRegistry calls this; custom registries
/// hosting a subset call it after registering their domains (codecs for
/// unregistered domains are skipped).
void RegisterDefaultCodecs(serve::DomainRegistry& registry);

}  // namespace omg::net
