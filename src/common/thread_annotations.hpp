// Portable Clang thread-safety (capability) annotation macros.
//
// Clang's -Wthread-safety analysis proves at compile time that every access
// to a guarded field happens under its lock and that every function's
// locking contract is met by its callers — the static half of the
// concurrency story (ThreadSanitizer is the dynamic half, and only catches
// races the scheduler happens to exercise). These macros expand to the
// underlying `capability` attributes under Clang and to nothing elsewhere,
// so annotated headers compile unchanged under GCC/MSVC.
//
// The vocabulary (mirrors clang.llvm.org/docs/ThreadSafetyAnalysis.html):
//
//   OMG_CAPABILITY(name)       — a class is a lockable capability
//   OMG_SCOPED_CAPABILITY      — an RAII class acquiring/releasing one
//   OMG_GUARDED_BY(mu)         — field access requires holding mu
//   OMG_PT_GUARDED_BY(mu)      — pointee access requires holding mu
//   OMG_REQUIRES(mu...)        — caller must hold mu (and keeps it)
//   OMG_ACQUIRE(mu...)         — function acquires mu
//   OMG_RELEASE(mu...)         — function releases mu
//   OMG_TRY_ACQUIRE(ok, mu...) — acquires mu iff the return equals ok
//   OMG_EXCLUDES(mu...)        — caller must NOT hold mu (deadlock guard)
//   OMG_ASSERT_CAPABILITY(mu)  — runtime assertion that mu is held; tells
//                                the analysis to trust it from here on
//   OMG_RETURN_CAPABILITY(mu)  — function returns a reference to mu
//   OMG_ACQUIRED_BEFORE/AFTER  — lock-ordering declarations
//   OMG_NO_THREAD_SAFETY_ANALYSIS — opt a definition out (justify inline!)
//
// Use these through the omg::Mutex / omg::MutexLock wrappers
// (common/mutex.hpp) — raw std::mutex is banned outside that shim by
// tools/check_source_contracts.py. The vocabulary and the locking
// discipline it encodes are documented in docs/STATIC_ANALYSIS.md.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define OMG_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define OMG_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

#define OMG_CAPABILITY(x) OMG_THREAD_ANNOTATION(capability(x))

#define OMG_SCOPED_CAPABILITY OMG_THREAD_ANNOTATION(scoped_lockable)

#define OMG_GUARDED_BY(x) OMG_THREAD_ANNOTATION(guarded_by(x))

#define OMG_PT_GUARDED_BY(x) OMG_THREAD_ANNOTATION(pt_guarded_by(x))

#define OMG_ACQUIRED_BEFORE(...) \
  OMG_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

#define OMG_ACQUIRED_AFTER(...) \
  OMG_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define OMG_REQUIRES(...) \
  OMG_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define OMG_REQUIRES_SHARED(...) \
  OMG_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define OMG_ACQUIRE(...) \
  OMG_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define OMG_ACQUIRE_SHARED(...) \
  OMG_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

#define OMG_RELEASE(...) \
  OMG_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define OMG_RELEASE_SHARED(...) \
  OMG_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

#define OMG_TRY_ACQUIRE(...) \
  OMG_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define OMG_EXCLUDES(...) OMG_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define OMG_ASSERT_CAPABILITY(x) \
  OMG_THREAD_ANNOTATION(assert_capability(x))

#define OMG_RETURN_CAPABILITY(x) OMG_THREAD_ANNOTATION(lock_returned(x))

#define OMG_NO_THREAD_SAFETY_ANALYSIS \
  OMG_THREAD_ANNOTATION(no_thread_safety_analysis)
