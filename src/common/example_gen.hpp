// Shared seeded synthetic-example generation.
//
// Every producer of synthetic traffic — the scenario harness, the wire
// load client, the throughput bench, and the trace recorder (src/replay) —
// draws from this one module, so "the same seed" means the same examples
// everywhere. Three generator families:
//
//   * MakeSyntheticExample: cheap per-index examples for any domain, no
//     model in the loop (wire load generation, protocol tests).
//   * GenerateScenarioTraffic: model-backed per-stream traffic for a
//     declarative scenario (pretrained detector/classifier outputs), the
//     traffic the harness serves and the recorder captures.
//   * MakeBenchStream: feature-vector streams for the runtime bench's
//     synthetic assertion suite.
//
// All of them are deterministic in their seeds: same inputs, byte-equal
// examples, on any host. test_replay pins this contract.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "config/scenario.hpp"
#include "serve/any_example.hpp"
#include "serve/result.hpp"

namespace omg::common {

/// Deterministic model-free example for `domain` ("video", "av", "ecg",
/// "tvnews"), varying with `index`; kUnknownDomain otherwise.
serve::Result<serve::AnyExample> MakeSyntheticExample(std::string_view domain,
                                                      std::size_t index);

/// Per-stream prebuilt traffic, keyed by stream name.
using TrafficMap = std::map<std::string, std::vector<serve::AnyExample>>;

/// Pregenerates traffic for every stream of `scenario` except the
/// `skip_domain` ones (the improvement loop generates its own domain live,
/// against the hot-swapped model). Deterministic in the stream seeds; the
/// shared per-domain model is pretrained from the domain's *first* stream
/// seed, so scenarios reproduce exactly. Throws config::SpecError for a
/// domain with no generator.
TrafficMap GenerateScenarioTraffic(const config::ScenarioSpec& scenario,
                                   const std::string& skip_domain = "");

/// One bench model invocation: a feature vector (e.g. pooled detector
/// activations).
struct BenchSample {
  std::size_t index = 0;
  std::array<double, 16> features{};
};

/// A seeded bench stream: Normal(0, 1.2) features with occasional anomaly
/// bursts (2% of samples scaled 3.5x).
std::vector<BenchSample> MakeBenchStream(std::uint64_t seed, std::size_t n);

}  // namespace omg::common
