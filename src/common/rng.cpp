#include "common/rng.hpp"

#include <cmath>
#include <numbers>
#include <numeric>

#include "common/check.hpp"

namespace omg::common {

namespace {

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

Rng Rng::Fork(std::uint64_t stream) {
  const std::uint64_t a = (*this)();
  return Rng(a ^ (stream * 0xD1342543DE82EF95ULL) ^ 0xA0761D6478BD642FULL);
}

double Rng::Uniform() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  Check(lo <= hi, "Uniform requires lo <= hi");
  return lo + (hi - lo) * Uniform();
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  Check(lo <= hi, "UniformInt requires lo <= hi");
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % range);
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw > limit);
  return lo + static_cast<std::int64_t>(draw % range);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller transform; u1 kept away from zero for log().
  double u1;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  CheckNonNegative(stddev, "Normal stddev");
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) {
  CheckInRange(p, 0.0, 1.0, "Bernoulli probability");
  return Uniform() < p;
}

double Rng::Exponential(double rate) {
  Check(rate > 0.0, "Exponential rate must be positive");
  double u;
  do {
    u = Uniform();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

std::size_t Rng::Categorical(std::span<const double> weights) {
  Check(!weights.empty(), "Categorical requires at least one weight");
  double total = 0.0;
  for (double w : weights) {
    CheckNonNegative(w, "Categorical weight");
    total += w;
  }
  Check(total > 0.0, "Categorical weights must have positive sum");
  double draw = Uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: fell off the end
}

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t k) {
  Check(k <= n, "SampleWithoutReplacement requires k <= n");
  std::vector<std::size_t> indices(n);
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  // Partial Fisher-Yates: after i steps the first i entries are the sample.
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        UniformInt(static_cast<std::int64_t>(i),
                   static_cast<std::int64_t>(n) - 1));
    using std::swap;
    swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

}  // namespace omg::common
