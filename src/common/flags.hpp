// Minimal command-line flag parsing for bench and example binaries.
//
// Supports `--name=value` and `--name value` forms plus bare boolean flags
// (`--verbose`). Unknown flags are an error so typos do not silently change
// an experiment.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace omg::common {

/// Parsed command-line flags.
class Flags {
 public:
  /// Parses argv. Throws CheckError on malformed input.
  static Flags Parse(int argc, const char* const* argv);

  /// Returns the flag value or `fallback` when absent.
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  std::int64_t GetInt(const std::string& name, std::int64_t fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

  /// Comma-separated integer list (`--workers 1,2,4`); a single integer is
  /// a one-element list. Benches use this to sweep configurations.
  std::vector<std::int64_t> GetIntList(
      const std::string& name, std::vector<std::int64_t> fallback) const;

  /// True if the flag was present on the command line.
  bool Has(const std::string& name) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& Positional() const { return positional_; }

  /// Names of all flags that were provided (used to reject unknown flags).
  std::vector<std::string> Names() const;

  /// Throws unless every provided flag name is in `allowed`.
  void CheckAllowed(const std::vector<std::string>& allowed) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace omg::common
