// Deterministic random-number generation for all OMG-C++ experiments.
//
// Every piece of randomness in the library flows through `Rng` so that every
// experiment is reproducible bit-for-bit from a single seed. The generator is
// xoshiro256** (Blackman & Vigna) seeded via SplitMix64, both implemented
// from the published reference algorithms.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace omg::common {

/// SplitMix64 step: used to expand a single 64-bit seed into generator state.
std::uint64_t SplitMix64(std::uint64_t& state);

/// Deterministic pseudo-random generator (xoshiro256**).
///
/// Satisfies UniformRandomBitGenerator, so it can also be used with the
/// standard <random> distributions, though the member helpers below are
/// preferred because their results are identical across platforms.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator from a 64-bit seed.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Derives an independent child generator; `stream` disambiguates children
  /// created from the same parent state.
  Rng Fork(std::uint64_t stream);

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second value).
  double Normal();

  /// Normal with the given mean and standard deviation (stddev >= 0).
  double Normal(double mean, double stddev);

  /// Bernoulli draw with probability p in [0, 1].
  bool Bernoulli(double p);

  /// Exponential with the given rate (> 0).
  double Exponential(double rate);

  /// Samples an index in [0, weights.size()) proportional to `weights`.
  /// Weights must be non-negative with a positive sum.
  std::size_t Categorical(std::span<const double> weights);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          UniformInt(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) uniformly (k <= n).
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t k);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace omg::common
