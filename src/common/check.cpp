#include "common/check.hpp"

#include <cmath>
#include <sstream>

namespace omg::common {

namespace detail {

void FailCheck(std::string_view what, std::string_view message,
               const std::source_location& loc) {
  std::ostringstream os;
  os << what << " at " << loc.file_name() << ":" << loc.line() << " ("
     << loc.function_name() << ")";
  if (!message.empty()) os << ": " << message;
  throw CheckError(os.str());
}

}  // namespace detail

void CheckNonNegative(double value, std::string_view message,
                      const std::source_location& loc) {
  if (!(std::isfinite(value) && value >= 0.0)) {
    std::ostringstream os;
    os << "expected finite non-negative value, got " << value;
    if (!message.empty()) os << " — " << message;
    detail::FailCheck("CheckNonNegative failed", os.str(), loc);
  }
}

void CheckIndex(std::ptrdiff_t value, std::ptrdiff_t lo, std::ptrdiff_t hi,
                std::string_view message, const std::source_location& loc) {
  if (value < lo || value >= hi) {
    std::ostringstream os;
    os << "index " << value << " outside [" << lo << ", " << hi << ")";
    if (!message.empty()) os << " — " << message;
    detail::FailCheck("CheckIndex failed", os.str(), loc);
  }
}

void CheckInRange(double value, double lo, double hi, std::string_view message,
                  const std::source_location& loc) {
  if (!(std::isfinite(value) && value >= lo && value <= hi)) {
    std::ostringstream os;
    os << "value " << value << " outside [" << lo << ", " << hi << "]";
    if (!message.empty()) os << " — " << message;
    detail::FailCheck("CheckInRange failed", os.str(), loc);
  }
}

}  // namespace omg::common
