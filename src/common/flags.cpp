#include "common/flags.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/check.hpp"

namespace omg::common {

Flags Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--name value` when the next token is not itself a flag; otherwise a
    // bare boolean.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags.values_[arg] = argv[++i];
    } else {
      flags.values_[arg] = "true";
    }
  }
  return flags;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::GetInt(const std::string& name,
                           std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw CheckError("flag --" + name + " is not an integer: " + it->second);
  }
}

double Flags::GetDouble(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw CheckError("flag --" + name + " is not a number: " + it->second);
  }
}

std::vector<std::int64_t> Flags::GetIntList(
    const std::string& name, std::vector<std::int64_t> fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::vector<std::int64_t> values;
  const std::string& text = it->second;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t comma = std::min(text.find(',', begin), text.size());
    const std::string item = text.substr(begin, comma - begin);
    try {
      std::size_t used = 0;
      values.push_back(std::stoll(item, &used));
      if (used != item.size()) throw std::invalid_argument(item);
    } catch (const std::exception&) {
      throw CheckError("flag --" + name +
                       " is not a comma-separated integer list: " + text);
    }
    begin = comma + 1;
  }
  return values;
}

bool Flags::GetBool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw CheckError("flag --" + name + " is not a boolean: " + v);
}

bool Flags::Has(const std::string& name) const {
  return values_.contains(name);
}

std::vector<std::string> Flags::Names() const {
  std::vector<std::string> names;
  names.reserve(values_.size());
  for (const auto& [name, _] : values_) names.push_back(name);
  return names;
}

void Flags::CheckAllowed(const std::vector<std::string>& allowed) const {
  for (const auto& [name, _] : values_) {
    if (std::find(allowed.begin(), allowed.end(), name) == allowed.end()) {
      throw CheckError("unknown flag --" + name);
    }
  }
}

}  // namespace omg::common
