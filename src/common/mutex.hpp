// omg::Mutex / omg::MutexLock / omg::CondVar — the annotated locking shim.
//
// Thin wrappers over std::mutex / std::condition_variable carrying the
// Clang thread-safety annotations from common/thread_annotations.hpp, so
// `clang++ -Wthread-safety -Werror` can prove the codebase's locking
// discipline: every OMG_GUARDED_BY field is only touched under its mutex,
// every OMG_REQUIRES contract is met by every caller. Raw std::mutex /
// std::lock_guard / std::condition_variable are banned outside this file
// by tools/check_source_contracts.py — the analysis only sees locks it
// can name.
//
// Usage rules (docs/STATIC_ANALYSIS.md has the full discipline):
//
//   * Prefer `MutexLock lock(mu_);` scopes over manual Lock/Unlock.
//   * Condition waits are explicit loops, not predicate lambdas:
//
//       MutexLock lock(mu_);
//       while (!ready_) cv_.Wait(mu_);
//
//     A lambda body is analyzed as an unannotated function, so a
//     predicate-style wait would need suppressions; the loop form keeps
//     the analysis exact and is what std::condition_variable::wait(lock,
//     pred) expands to anyway.
//   * CondVar waits require the mutex (OMG_REQUIRES): held on entry,
//     released while blocked, re-held on return — the capability is
//     continuously "owned" from the analysis's point of view.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hpp"

namespace omg {

/// A std::mutex with capability annotations. Non-recursive, non-copyable.
class OMG_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  /// Blocks until the mutex is acquired.
  void Lock() OMG_ACQUIRE() { mu_.lock(); }

  /// Releases the mutex (must be held by this thread).
  void Unlock() OMG_RELEASE() { mu_.unlock(); }

  /// Acquires the mutex iff it was free; returns whether it was acquired.
  bool TryLock() OMG_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Tells the static analysis the mutex is held here without acquiring
  /// it — the escape hatch for capabilities that are provably held via an
  /// alias the analysis cannot name (e.g. the claimed-stream protocol,
  /// where "the home shard's mutex" is a runtime value). Every call site
  /// must carry a comment justifying why the capability is in fact held.
  void AssertHeld() const OMG_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII scope holding an omg::Mutex. Supports early release (Unlock) and
/// re-acquisition (Lock) so wait-then-bail admission paths stay scoped.
class OMG_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) OMG_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  ~MutexLock() OMG_RELEASE() {
    if (held_) mu_.Unlock();
  }

  /// Releases before scope exit (the destructor then does nothing).
  void Unlock() OMG_RELEASE() {
    mu_.Unlock();
    held_ = false;
  }

  /// Re-acquires after an early Unlock().
  void Lock() OMG_ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

/// A std::condition_variable bound to omg::Mutex. Waits temporarily adopt
/// the caller-held native mutex; notification never requires the mutex.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and blocks until notified (or spuriously
  /// woken); re-acquires `mu` before returning. Always wait in a loop that
  /// re-checks the condition.
  void Wait(Mutex& mu) OMG_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // ownership stays with the caller's scope
  }

  /// Wait with a timeout; returns std::cv_status::timeout when `timeout`
  /// elapsed first. Same loop discipline as Wait.
  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         std::chrono::duration<Rep, Period> timeout)
      OMG_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(native, timeout);
    native.release();
    return status;
  }

  /// Wakes one waiter.
  void NotifyOne() { cv_.notify_one(); }

  /// Wakes every waiter.
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace omg
