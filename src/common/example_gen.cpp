#include "common/example_gen.hpp"

#include <utility>

#include "av/factory.hpp"
#include "av/pipeline.hpp"
#include "common/rng.hpp"
#include "config/spec.hpp"
#include "ecg/ecg.hpp"
#include "ecg/factory.hpp"
#include "tvnews/factory.hpp"
#include "tvnews/news.hpp"
#include "video/detector.hpp"
#include "video/factory.hpp"
#include "video/world.hpp"

namespace omg::common {

namespace {

/// Moves a typed example vector into facade holders.
template <typename Example>
std::vector<serve::AnyExample> Erase(std::vector<Example> examples) {
  std::vector<serve::AnyExample> erased;
  erased.reserve(examples.size());
  for (Example& example : examples) {
    erased.push_back(serve::AnyExample::Make(std::move(example)));
  }
  return erased;
}

void MakeVideoTraffic(const std::vector<config::StreamSpec>& specs,
                      TrafficMap& traffic) {
  // One detector serves every stream (the deployment has one model); its
  // pretraining seed comes from the first stream so scenarios reproduce.
  video::NightStreetWorld seed_world(video::WorldConfig{},
                                     specs.front().seed);
  video::SsdDetector detector(video::DetectorConfig{},
                              seed_world.config().feature_dim,
                              specs.front().seed);
  detector.Pretrain(seed_world.PretrainingSet(500, 700));

  for (const config::StreamSpec& spec : specs) {
    video::NightStreetWorld world(video::WorldConfig{}, spec.seed);
    std::vector<video::VideoExample> examples;
    examples.reserve(spec.examples);
    for (const auto& frame : world.GenerateFrames(spec.examples)) {
      examples.push_back({frame.index, frame.timestamp,
                          detector.Detect(frame)});
    }
    traffic.emplace(spec.name, Erase(std::move(examples)));
  }
}

void MakeAvTraffic(const std::vector<config::StreamSpec>& specs,
                   TrafficMap& traffic) {
  for (const config::StreamSpec& spec : specs) {
    av::AvPipelineConfig config;
    config.pool_scenes =
        spec.examples / config.world.samples_per_scene + 1;
    config.test_scenes = 1;
    config.world_seed = spec.seed;
    av::AvPipeline pipeline(config);
    std::vector<av::AvExample> examples =
        pipeline.MakeExamples(pipeline.pool());
    if (examples.size() > spec.examples) examples.resize(spec.examples);
    traffic.emplace(spec.name, Erase(std::move(examples)));
  }
}

void MakeEcgTraffic(const std::vector<config::StreamSpec>& specs,
                    TrafficMap& traffic) {
  ecg::EcgGenerator seed_generator(ecg::EcgConfig{}, specs.front().seed);
  ecg::EcgClassifier classifier(ecg::EcgClassifierConfig{},
                                seed_generator.config().feature_dim,
                                specs.front().seed);
  classifier.Pretrain(seed_generator.PretrainingSet(600));

  for (const config::StreamSpec& spec : specs) {
    ecg::EcgGenerator generator(ecg::EcgConfig{}, spec.seed);
    const std::size_t records =
        spec.examples / generator.config().windows_per_record + 1;
    std::vector<ecg::EcgExample> examples;
    for (const auto& window : generator.GenerateRecords(records)) {
      if (examples.size() == spec.examples) break;
      examples.push_back({window.record, window.timestamp,
                          classifier.Predict(window)});
    }
    traffic.emplace(spec.name, Erase(std::move(examples)));
  }
}

void MakeNewsTraffic(const std::vector<config::StreamSpec>& specs,
                     TrafficMap& traffic) {
  for (const config::StreamSpec& spec : specs) {
    tvnews::NewsGenerator generator(tvnews::NewsConfig{}, spec.seed);
    traffic.emplace(spec.name, Erase(generator.Generate(spec.examples)));
  }
}

std::vector<config::StreamSpec> StreamsOf(
    const config::ScenarioSpec& scenario, const std::string& domain) {
  std::vector<config::StreamSpec> streams;
  for (const config::StreamSpec& stream : scenario.streams) {
    if (stream.domain == domain) streams.push_back(stream);
  }
  return streams;
}

}  // namespace

serve::Result<serve::AnyExample> MakeSyntheticExample(
    std::string_view domain, std::size_t index) {
  serve::AnyExample example;
  const double ts = static_cast<double>(index) * 0.033;
  if (domain == "video") {
    video::VideoExample payload;
    payload.frame_index = index;
    payload.timestamp = ts;
    payload.detections.push_back(
        {{0.1, 0.1, 0.4, 0.5}, "car", 0.6 + 0.3 * ((index % 7) / 7.0), -1});
    if (index % 3 != 0) {
      payload.detections.push_back(
          {{0.5, 0.2, 0.8, 0.6}, "car", 0.55, -1});
    }
    example.Emplace<video::VideoExample>(std::move(payload));
    return example;
  }
  if (domain == "av") {
    av::AvExample payload;
    payload.sample_index = index;
    payload.timestamp = ts;
    payload.scene = (index % 5 == 0) ? "night" : "day";
    payload.camera.push_back({{0.2, 0.2, 0.5, 0.6}, "car", 0.7, -1});
    payload.lidar_projected.push_back({0.21, 0.19, 0.52, 0.61});
    if (index % 4 == 0) payload.lidar_projected.push_back({0.7, 0.1, 0.9, 0.3});
    example.Emplace<av::AvExample>(std::move(payload));
    return example;
  }
  if (domain == "ecg") {
    ecg::EcgExample payload;
    payload.record = "synthetic-" + std::to_string(index % 16);
    payload.timestamp = ts;
    payload.predicted = static_cast<ecg::Rhythm>(index % ecg::kNumRhythms);
    example.Emplace<ecg::EcgExample>(std::move(payload));
    return example;
  }
  if (domain == "tvnews") {
    tvnews::NewsFrame payload;
    payload.index = index;
    payload.timestamp = ts;
    payload.scene_id = static_cast<std::int64_t>(index / 24);
    tvnews::FaceOutput face;
    face.box = {0.3, 0.2, 0.5, 0.5};
    face.identity = "anchor-" + std::to_string(index % 3);
    face.gender = (index % 2 == 0) ? "F" : "M";
    face.hair = "dark";
    face.person_id = static_cast<std::int64_t>(index % 3);
    face.true_identity = face.identity;
    face.true_gender = face.gender;
    face.true_hair = face.hair;
    payload.faces.push_back(std::move(face));
    example.Emplace<tvnews::NewsFrame>(std::move(payload));
    return example;
  }
  return serve::Error{serve::ErrorCode::kUnknownDomain,
                      "no synthetic example maker for domain '" +
                          std::string(domain) + "'"};
}

TrafficMap GenerateScenarioTraffic(const config::ScenarioSpec& scenario,
                                   const std::string& skip_domain) {
  TrafficMap traffic;
  for (const std::string& domain : scenario.Domains()) {
    if (domain == skip_domain) continue;
    const std::vector<config::StreamSpec> specs =
        StreamsOf(scenario, domain);
    if (domain == "video") {
      MakeVideoTraffic(specs, traffic);
    } else if (domain == "av") {
      MakeAvTraffic(specs, traffic);
    } else if (domain == "ecg") {
      MakeEcgTraffic(specs, traffic);
    } else if (domain == "tvnews") {
      MakeNewsTraffic(specs, traffic);
    } else {
      throw config::SpecError(
          scenario.source, 0, 0,
          "no traffic generator for domain '" + domain +
              "' (generators exist for video, av, ecg, tvnews)");
    }
  }
  return traffic;
}

std::vector<BenchSample> MakeBenchStream(std::uint64_t seed, std::size_t n) {
  common::Rng rng(seed);
  std::vector<BenchSample> stream;
  stream.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    BenchSample sample;
    sample.index = i;
    for (double& f : sample.features) f = rng.Normal(0.0, 1.2);
    if (rng.Bernoulli(0.02)) {  // occasional anomaly burst
      for (double& f : sample.features) f *= 3.5;
    }
    stream.push_back(sample);
  }
  return stream;
}

}  // namespace omg::common
