// Column-aligned text tables for the bench harnesses.
//
// Every bench binary prints its table/figure rows through `TextTable` so the
// output is uniform and diffable against EXPERIMENTS.md.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace omg::common {

/// Accumulates rows of string cells and renders them with aligned columns.
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; it may have fewer cells than there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Number of data rows added so far.
  std::size_t RowCount() const { return rows_.size(); }

  /// Renders the table (headers, separator, rows) to `os`.
  void Print(std::ostream& os) const;

  /// Renders to a string (used by tests).
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits = 2);

/// Formats a fraction as a percentage string, e.g. 0.464 -> "46.4%".
std::string FormatPercent(double fraction, int digits = 1);

}  // namespace omg::common
