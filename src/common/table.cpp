#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace omg::common {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
         << cells[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::string separator;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    separator += std::string(widths[c], '-') + "  ";
  }
  os << separator << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TextTable::ToString() const {
  std::ostringstream os;
  Print(os);
  return os.str();
}

std::string FormatDouble(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

std::string FormatPercent(double fraction, int digits) {
  return FormatDouble(100.0 * fraction, digits) + "%";
}

}  // namespace omg::common
