// Runtime-check helpers used throughout OMG-C++.
//
// Following the C++ Core Guidelines (I.6/I.8, E.12) we express preconditions
// and invariants as ordinary functions that throw on violation rather than
// macros. Checks are always on: the library is a correctness tool, so silent
// corruption is worse than the (tiny) cost of a branch.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace omg::common {

/// Error thrown when a `Check*` precondition fails.
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] void FailCheck(std::string_view what, std::string_view message,
                            const std::source_location& loc);
}  // namespace detail

/// Throws CheckError unless `condition` holds.
inline void Check(bool condition, std::string_view message = "",
                  const std::source_location& loc =
                      std::source_location::current()) {
  if (!condition) detail::FailCheck("Check failed", message, loc);
}

/// Throws CheckError unless `value` is finite and non-negative.
void CheckNonNegative(double value, std::string_view message = "",
                      const std::source_location& loc =
                          std::source_location::current());

/// Throws CheckError unless `lo <= value && value < hi`.
void CheckIndex(std::ptrdiff_t value, std::ptrdiff_t lo, std::ptrdiff_t hi,
                std::string_view message = "",
                const std::source_location& loc =
                    std::source_location::current());

/// Throws CheckError unless `value` lies in the closed interval [lo, hi].
void CheckInRange(double value, double lo, double hi,
                  std::string_view message = "",
                  const std::source_location& loc =
                      std::source_location::current());

}  // namespace omg::common
