// Runtime monitoring of a video-analytics deployment (§2.3 of the paper):
// the night-street detector streams frames through the assertion suite; a
// dashboard accumulates per-assertion fire counts, and high-severity events
// trigger a (simulated) corrective action.
//
// Build & run:  ./examples/video_monitoring [--frames N]
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/monitor.hpp"
#include "video/assertions.hpp"
#include "video/detector.hpp"
#include "video/world.hpp"

int main(int argc, char** argv) {
  using namespace omg;
  const auto flags = common::Flags::Parse(argc, argv);
  flags.CheckAllowed({"frames", "seed"});
  const auto n_frames =
      static_cast<std::size_t>(flags.GetInt("frames", 400));
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));

  // Deploy: world + pretrained detector + assertion suite.
  video::NightStreetWorld world(video::WorldConfig{}, seed);
  video::SsdDetector detector(video::DetectorConfig{},
                              world.config().feature_dim, seed);
  detector.Pretrain(world.PretrainingSet(500, 700));
  video::VideoSuite suite = video::BuildVideoSuite();

  core::StreamingMonitor<video::VideoExample> monitor(suite.suite,
                                                      /*window=*/24,
                                                      /*settle_lag=*/6);
  std::size_t corrective_actions = 0;
  monitor.OnEvent([&](const core::MonitorEvent& event) {
    // Corrective action hook: e.g. route the clip for human review when a
    // multibox stack of 2+ triples shows up.
    if (event.assertion == "multibox" && event.severity >= 2.0) {
      ++corrective_actions;
    }
  });

  // Stream the deployment.
  for (const auto& frame : world.GenerateFrames(n_frames)) {
    video::VideoExample example;
    example.frame_index = frame.index;
    example.timestamp = frame.timestamp;
    example.detections = detector.Detect(frame);
    suite.consistency->Invalidate();  // window contents changed
    monitor.Observe(std::move(example));
  }

  // Dashboard.
  const auto& stats = monitor.stats();
  std::cout << "=== night-street monitoring dashboard ===\n\n"
            << "frames observed:  " << stats.examples_seen << "\n"
            << "events emitted:   " << stats.events_emitted << "\n\n";
  common::TextTable table({"Assertion", "Frames fired", "Max severity"});
  for (const auto& [name, count] : stats.fire_counts) {
    table.AddRow({name, std::to_string(count),
                  common::FormatDouble(stats.max_severity.at(name), 1)});
  }
  table.Print(std::cout);
  std::cout << "\ncorrective actions triggered: " << corrective_actions
            << " (multibox severity >= 2)\n";
  return 0;
}
