// Cross-sensor weak supervision on the AV task (§4, §5.5): the fixed LIDAR
// model's 3D boxes are projected onto the camera plane; wherever the camera
// missed a box the projection proposes one, and the matching camera
// proposal becomes a weak positive. The camera model is fine-tuned on those
// weak labels only — no human labeling.
//
// Build & run:  ./examples/av_weak_supervision
#include <iostream>

#include "av/pipeline.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace omg;
  const auto flags = common::Flags::Parse(argc, argv);
  flags.CheckAllowed({"seed", "scenes"});
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 37));

  av::AvPipelineConfig config;
  config.pool_scenes =
      static_cast<std::size_t>(flags.GetInt("scenes", 14));
  config.test_scenes = 5;
  av::AvPipeline pipeline(config);

  // Show the agree assertion at work before correcting anything.
  const core::SeverityMatrix severities = pipeline.ComputeSeverities();
  std::cout << "=== LIDAR -> camera weak supervision ===\n\n"
            << "pool: " << pipeline.pool().size() << " samples ("
            << config.pool_scenes << " scenes at 2 Hz)\n"
            << "`agree` fired on "
            << severities.ExamplesFiring(pipeline.suite().agree_index).size()
            << " samples under the pretrained camera model\n\n";

  const auto result =
      RunAvWeakSupervision(pipeline, pipeline.pool().size(), seed);

  common::TextTable table({"", "mAP"});
  table.AddRow({"pretrained camera",
                common::FormatDouble(100.0 * result.pretrained_metric, 1)});
  table.AddRow(
      {"after weak supervision",
       common::FormatDouble(100.0 * result.weakly_supervised_metric, 1)});
  table.Print(std::cout);
  std::cout << "\nweak positives imputed from LIDAR: "
            << result.weak_positives << "\n"
            << "relative improvement: "
            << common::FormatPercent(result.RelativeImprovement(), 1)
            << " — with zero human labels.\n";
  return 0;
}
