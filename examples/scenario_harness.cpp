// One binary, N workloads: loads declarative scenario files (configs/*.conf,
// format in docs/CONFIGURATION.md), instantiates each one against the
// sharded assertion-serving runtime through the config layer, and emits a
// per-scenario metrics/latency report. Adding a workload is editing a
// config file, not writing a main().
//
//   * every suite comes from the AssertionFactory registries the four
//     domains populate (src/*/factory.cpp) — names like `video.multibox`
//     with parameters from [assertion ...] sections;
//   * runtime geometry and admission come from [runtime] / [admission];
//   * scenarios with `[loop] enabled = true` run the improvement loop on
//     their video streams: traffic is served in waves, each followed by a
//     select -> label -> retrain round and a hot-swap pickup.
//
// Build & run:
//   ./examples/scenario_harness ../configs/*.conf     # explicit files
//   ./examples/scenario_harness --configs ../configs  # every *.conf in DIR
//   ./examples/scenario_harness --describe            # registered assertions
#include <algorithm>
#include <chrono>
#include <filesystem>
#include <iostream>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "av/factory.hpp"
#include "av/pipeline.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "config/scenario.hpp"
#include "ecg/factory.hpp"
#include "loop/improvement_loop.hpp"
#include "runtime/sharded_service.hpp"
#include "tvnews/factory.hpp"
#include "video/detector.hpp"
#include "video/factory.hpp"
#include "video/pipeline.hpp"
#include "video/world.hpp"

namespace {

using namespace omg;

/// The per-domain assertion registries, populated once at startup.
struct Factories {
  config::AssertionFactory<video::VideoExample> video;
  config::AssertionFactory<av::AvExample> av;
  config::AssertionFactory<ecg::EcgExample> ecg;
  config::AssertionFactory<tvnews::NewsFrame> tvnews;

  Factories() {
    video::RegisterVideoAssertions(video);
    av::RegisterAvAssertions(av);
    ecg::RegisterEcgAssertions(ecg);
    tvnews::RegisterNewsAssertions(tvnews);
  }
};

/// One line of the end-of-run summary table.
struct SummaryRow {
  std::string scenario;
  std::string domain;
  std::size_t streams = 0;
  std::size_t examples = 0;
  std::size_t events = 0;
  std::size_t shed = 0;
  std::size_t dropped = 0;
  double p99_ms = 0.0;
  double wall_seconds = 0.0;
};

void PrintDomainReport(const std::string& domain,
                       const runtime::MetricsSnapshot& snapshot,
                       const std::vector<std::string>& errors) {
  common::TextTable table(
      {"Stream", "Assertion", "Fires", "Max sev", "Flag/ex"});
  for (const auto& stream : snapshot.streams) {
    for (const auto& [assertion, cell] : stream.assertions) {
      table.AddRow({stream.stream, assertion, std::to_string(cell.fires),
                    common::FormatDouble(cell.max_severity, 2),
                    common::FormatDouble(stream.FlaggedRate(assertion), 3)});
    }
  }
  table.Print(std::cout);
  common::TextTable shard_table({"Shard", "Examples", "Shed", "Dropped",
                                 "Peak depth", "p50 ms", "p95 ms", "p99 ms"});
  for (const auto& shard : snapshot.shards) {
    shard_table.AddRow(
        {std::to_string(shard.shard), std::to_string(shard.examples),
         std::to_string(shard.shed_examples),
         std::to_string(shard.dropped_examples),
         std::to_string(shard.queue_depth_peak),
         common::FormatDouble(shard.latency.Quantile(0.50) * 1e3, 3),
         common::FormatDouble(shard.latency.Quantile(0.95) * 1e3, 3),
         common::FormatDouble(shard.latency.Quantile(0.99) * 1e3, 3)});
  }
  shard_table.Print(std::cout);
  for (const auto& error : errors) {
    std::cout << domain << " ingest error: " << error << "\n";
  }
}

SummaryRow Summarise(const std::string& scenario, const std::string& domain,
                     std::size_t streams,
                     const runtime::MetricsSnapshot& snapshot,
                     double wall_seconds) {
  SummaryRow row;
  row.scenario = scenario;
  row.domain = domain;
  row.streams = streams;
  row.examples = snapshot.examples_seen;
  row.events = snapshot.events;
  row.shed = snapshot.TotalShedExamples();
  row.dropped = snapshot.TotalDroppedExamples();
  row.p99_ms = snapshot.MergedLatency().Quantile(0.99) * 1e3;
  row.wall_seconds = wall_seconds;
  return row;
}

/// Serves pre-generated traffic for one domain through a sharded service
/// configured by the scenario, and prints the dashboard.
template <typename Example>
SummaryRow ServeStreams(
    const config::ScenarioSpec& scenario,
    const config::AssertionFactory<Example>& factory,
    const std::string& domain,
    const std::vector<std::pair<config::StreamSpec, std::vector<Example>>>&
        traffic) {
  const config::SuiteSpec* suite_spec = scenario.SuiteFor(domain);
  const auto start = std::chrono::steady_clock::now();
  runtime::ShardedMonitorService<Example> service(
      config::ConfigLoader::MakeRuntimeConfig(scenario),
      config::MakeSuiteFactory(factory, *suite_spec));
  std::vector<runtime::StreamId> ids;
  for (const auto& [spec, examples] : traffic) {
    ids.push_back(service.RegisterStream(spec.name));
  }
  for (std::size_t s = 0; s < traffic.size(); ++s) {
    const auto& [spec, examples] = traffic[s];
    for (std::size_t begin = 0; begin < examples.size();
         begin += spec.batch) {
      const std::size_t count =
          std::min(spec.batch, examples.size() - begin);
      service.ObserveBatch(ids[s],
                           std::vector<Example>(examples.begin() + begin,
                                                examples.begin() + begin +
                                                    count),
                           spec.severity_hint);
    }
  }
  service.Flush();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const runtime::MetricsSnapshot snapshot = service.Metrics();
  PrintDomainReport(domain, snapshot, service.Errors());
  return Summarise(scenario.name, domain, traffic.size(), snapshot, wall);
}

// ----------------------------------------------------------- traffic gen ---

std::vector<std::pair<config::StreamSpec, std::vector<video::VideoExample>>>
MakeVideoTraffic(const std::vector<config::StreamSpec>& specs) {
  // One detector serves every stream (the deployment has one model); its
  // pretraining seed comes from the first stream so scenarios reproduce.
  video::NightStreetWorld seed_world(video::WorldConfig{},
                                     specs.front().seed);
  video::SsdDetector detector(video::DetectorConfig{},
                              seed_world.config().feature_dim,
                              specs.front().seed);
  detector.Pretrain(seed_world.PretrainingSet(500, 700));

  std::vector<std::pair<config::StreamSpec, std::vector<video::VideoExample>>>
      traffic;
  for (const config::StreamSpec& spec : specs) {
    video::NightStreetWorld world(video::WorldConfig{}, spec.seed);
    std::vector<video::VideoExample> examples;
    examples.reserve(spec.examples);
    for (const auto& frame : world.GenerateFrames(spec.examples)) {
      examples.push_back({frame.index, frame.timestamp,
                          detector.Detect(frame)});
    }
    traffic.emplace_back(spec, std::move(examples));
  }
  return traffic;
}

std::vector<std::pair<config::StreamSpec, std::vector<av::AvExample>>>
MakeAvTraffic(const std::vector<config::StreamSpec>& specs) {
  std::vector<std::pair<config::StreamSpec, std::vector<av::AvExample>>>
      traffic;
  for (const config::StreamSpec& spec : specs) {
    av::AvPipelineConfig config;
    config.pool_scenes =
        spec.examples / config.world.samples_per_scene + 1;
    config.test_scenes = 1;
    config.world_seed = spec.seed;
    av::AvPipeline pipeline(config);
    std::vector<av::AvExample> examples =
        pipeline.MakeExamples(pipeline.pool());
    if (examples.size() > spec.examples) examples.resize(spec.examples);
    traffic.emplace_back(spec, std::move(examples));
  }
  return traffic;
}

std::vector<std::pair<config::StreamSpec, std::vector<ecg::EcgExample>>>
MakeEcgTraffic(const std::vector<config::StreamSpec>& specs) {
  ecg::EcgGenerator seed_generator(ecg::EcgConfig{}, specs.front().seed);
  ecg::EcgClassifier classifier(ecg::EcgClassifierConfig{},
                                seed_generator.config().feature_dim,
                                specs.front().seed);
  classifier.Pretrain(seed_generator.PretrainingSet(600));

  std::vector<std::pair<config::StreamSpec, std::vector<ecg::EcgExample>>>
      traffic;
  for (const config::StreamSpec& spec : specs) {
    ecg::EcgGenerator generator(ecg::EcgConfig{}, spec.seed);
    const std::size_t records =
        spec.examples / generator.config().windows_per_record + 1;
    std::vector<ecg::EcgExample> examples;
    for (const auto& window : generator.GenerateRecords(records)) {
      if (examples.size() == spec.examples) break;
      examples.push_back({window.record, window.timestamp,
                          classifier.Predict(window)});
    }
    traffic.emplace_back(spec, std::move(examples));
  }
  return traffic;
}

std::vector<std::pair<config::StreamSpec, std::vector<tvnews::NewsFrame>>>
MakeNewsTraffic(const std::vector<config::StreamSpec>& specs) {
  std::vector<std::pair<config::StreamSpec, std::vector<tvnews::NewsFrame>>>
      traffic;
  for (const config::StreamSpec& spec : specs) {
    tvnews::NewsGenerator generator(tvnews::NewsConfig{}, spec.seed);
    traffic.emplace_back(spec, generator.Generate(spec.examples));
  }
  return traffic;
}

// ------------------------------------------------------------- loop mode ---

/// The VideoAssertionConfig a scenario's video suite parameters describe —
/// the mixed oracle's correction suite must score with the *same*
/// parameters as the deployed factory-built suite, or corrections would be
/// derived under a different configuration than the flags that selected
/// the candidates.
video::VideoAssertionConfig VideoConfigFromSpec(
    const config::SuiteSpec& spec) {
  video::VideoAssertionConfig config;
  for (const config::AssertionSpec& assertion : spec.assertions) {
    if (assertion.name == "video.multibox") {
      config.multibox_iou =
          assertion.params.GetDouble("iou", config.multibox_iou);
    } else if (assertion.name == "video.consistency") {
      config.temporal_threshold = assertion.params.GetDouble(
          "temporal_threshold", config.temporal_threshold);
      config.tracker.min_iou =
          assertion.params.GetDouble("tracker_iou", config.tracker.min_iou);
      config.tracker.max_coast_frames = assertion.params.GetSize(
          "tracker_max_misses", config.tracker.max_coast_frames);
    }
  }
  return config;
}

/// Video streams with the improvement loop live: traffic is served in
/// `loop.rounds` waves; after each wave the scheduler runs one
/// select -> label -> retrain round and serving picks up the new model
/// version before the next wave.
SummaryRow ServeVideoLoop(const config::ScenarioSpec& scenario,
                          const config::AssertionFactory<video::VideoExample>&
                              factory,
                          const std::vector<config::StreamSpec>& specs) {
  const config::SuiteSpec* suite_spec = scenario.SuiteFor("video");
  const config::LoopSpec& loop_spec = scenario.loop;
  const auto start = std::chrono::steady_clock::now();

  video::NightStreetWorld seed_world(video::WorldConfig{},
                                     specs.front().seed);
  nn::Dataset pretrain = seed_world.PretrainingSet(500, 700);
  video::SsdDetector detector(video::DetectorConfig{},
                              seed_world.config().feature_dim,
                              specs.front().seed);
  detector.Pretrain(pretrain);

  // Retained live traffic, indexed by [stream id][example index] — what the
  // oracles resolve CandidateKeys against.
  std::vector<std::unique_ptr<video::NightStreetWorld>> worlds;
  std::vector<std::vector<video::Frame>> frames;
  std::vector<std::vector<video::VideoExample>> deployed;
  for (const config::StreamSpec& spec : specs) {
    worlds.push_back(std::make_unique<video::NightStreetWorld>(
        video::WorldConfig{}, spec.seed));
    frames.emplace_back();
    deployed.emplace_back();
  }

  auto human = std::make_shared<loop::GroundTruthOracle>(
      [&frames](const loop::CandidateKey& key) {
        return video::NightStreetWorld::LabelFrame(
            frames.at(key.stream_id).at(key.example_index));
      });
  std::shared_ptr<loop::LabelOracle> oracle = human;
  if (loop_spec.oracle == "mixed") {
    auto correction_suite = std::make_shared<video::VideoSuite>(
        video::BuildVideoSuite(VideoConfigFromSpec(*suite_spec)));
    auto weak = std::make_shared<loop::WeakLabelOracle>(
        [&frames, &deployed, correction_suite](
            std::span<const loop::CandidateKey> keys) {
          nn::Dataset rows;
          for (std::size_t s = 0; s < frames.size(); ++s) {
            std::set<std::size_t> chosen;
            for (const auto& key : keys) {
              if (key.stream_id == s) chosen.insert(key.example_index);
            }
            if (chosen.empty()) continue;
            correction_suite->consistency->Invalidate();
            rows.Append(video::MakeWeakLabelDataset(
                *correction_suite, frames[s], deployed[s], chosen));
          }
          return rows;
        },
        loop_spec.weak_weight);
    oracle = std::make_shared<loop::MixedOracle>(human, weak);
  }

  // The suite the service will emit events from decides the store columns.
  const runtime::SuiteBundle<video::VideoExample> probe =
      config::BuildSuiteBundle(factory, *suite_spec);
  loop::ImprovementLoopConfig loop_config =
      config::ConfigLoader::MakeLoopConfig(
          loop_spec, probe.suite->Names(),
          video::DetectorConfig{}.finetune_sgd);
  loop_config.retrain.replay_weight = 1.0;
  loop::ImprovementLoop improvement(
      loop_config, config::ConfigLoader::MakeStrategy(loop_spec.strategy),
      oracle, detector.model(), pretrain);

  runtime::ShardedMonitorService<video::VideoExample> service(
      config::ConfigLoader::MakeRuntimeConfig(scenario),
      config::MakeSuiteFactory(factory, *suite_spec));
  service.AddSink(improvement.sink());
  std::vector<runtime::StreamId> ids;
  for (const config::StreamSpec& spec : specs) {
    ids.push_back(service.RegisterStream(spec.name));
  }

  std::uint64_t served_version = 0;
  std::size_t events_before = 0;
  std::size_t examples_before = 0;
  common::TextTable rounds_table({"Wave", "Candidates", "Selected", "Human",
                                  "Weak", "Fallback", "Flagged/ex"});
  for (std::size_t wave = 0; wave < loop_spec.rounds; ++wave) {
    // Hot-swap pickup point: between waves, never mid-batch.
    const loop::ModelHandle handle = improvement.registry().Current();
    if (handle.version != served_version) {
      detector.SetModel(*handle.model);
      served_version = handle.version;
    }
    for (std::size_t s = 0; s < specs.size(); ++s) {
      const std::size_t wave_frames =
          std::max<std::size_t>(1, specs[s].examples / loop_spec.rounds);
      std::vector<video::VideoExample> batch;
      for (const video::Frame& frame :
           worlds[s]->GenerateFrames(wave_frames)) {
        video::VideoExample example{frame.index, frame.timestamp,
                                    detector.Detect(frame)};
        frames[s].push_back(frame);
        deployed[s].push_back(example);
        batch.push_back(std::move(example));
        if (batch.size() == specs[s].batch) {
          service.ObserveBatch(ids[s], std::move(batch),
                               specs[s].severity_hint);
          batch.clear();
        }
      }
      if (!batch.empty()) {
        service.ObserveBatch(ids[s], std::move(batch),
                             specs[s].severity_hint);
      }
    }
    service.Flush();

    const runtime::MetricsSnapshot snapshot = service.Metrics();
    const double flagged_rate =
        static_cast<double>(snapshot.events - events_before) /
        static_cast<double>(snapshot.examples_seen - examples_before);
    events_before = snapshot.events;
    examples_before = snapshot.examples_seen;

    const std::optional<loop::RoundStats> stats = improvement.RunRound();
    improvement.WaitForRetrains();
    rounds_table.AddRow(
        {std::to_string(wave),
         stats ? std::to_string(stats->candidates) : "-",
         stats ? std::to_string(stats->selected) : "-",
         stats ? std::to_string(stats->human_labels) : "-",
         stats ? std::to_string(stats->weak_labels) : "-",
         stats ? (stats->used_fallback ? "yes" : "no") : "-",
         common::FormatDouble(flagged_rate, 3)});
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::cout << "improvement loop (" << loop_spec.strategy << " strategy, "
            << oracle->Name() << " oracle, budget " << loop_spec.budget
            << "/round, final model v" << served_version << "):\n";
  rounds_table.Print(std::cout);
  const runtime::MetricsSnapshot snapshot = service.Metrics();
  PrintDomainReport("video", snapshot, service.Errors());
  return Summarise(scenario.name, "video+loop", specs.size(), snapshot,
                   wall);
}

// ------------------------------------------------------------- scenarios ---

std::vector<config::StreamSpec> StreamsOf(
    const config::ScenarioSpec& scenario, const std::string& domain) {
  std::vector<config::StreamSpec> streams;
  for (const config::StreamSpec& stream : scenario.streams) {
    if (stream.domain == domain) streams.push_back(stream);
  }
  return streams;
}

void RunScenario(const std::string& path, const Factories& factories,
                 std::vector<SummaryRow>& summary) {
  const config::ScenarioSpec scenario = config::ConfigLoader::LoadFile(path);
  std::cout << "=== scenario '" << scenario.name << "' (" << path << ")\n";
  if (!scenario.description.empty()) {
    std::cout << "    " << scenario.description << "\n";
  }
  std::cout << "    runtime: " << scenario.runtime.shards << " shards, "
            << "window " << scenario.runtime.window << ", queue cap "
            << scenario.runtime.queue_capacity << ", "
            << runtime::AdmissionPolicyName(scenario.admission.policy)
            << " admission\n\n";

  for (const std::string& domain : scenario.Domains()) {
    const std::vector<config::StreamSpec> specs =
        StreamsOf(scenario, domain);
    std::cout << "--- " << domain << " (" << specs.size() << " stream"
              << (specs.size() == 1 ? "" : "s") << ") ---\n";
    if (domain == "video") {
      if (scenario.loop.enabled) {
        summary.push_back(ServeVideoLoop(scenario, factories.video, specs));
      } else {
        summary.push_back(ServeStreams(scenario, factories.video, "video",
                                       MakeVideoTraffic(specs)));
      }
    } else if (domain == "av") {
      summary.push_back(
          ServeStreams(scenario, factories.av, "av", MakeAvTraffic(specs)));
    } else if (domain == "ecg") {
      summary.push_back(ServeStreams(scenario, factories.ecg, "ecg",
                                     MakeEcgTraffic(specs)));
    } else if (domain == "tvnews") {
      summary.push_back(ServeStreams(scenario, factories.tvnews, "tvnews",
                                     MakeNewsTraffic(specs)));
    } else {
      throw config::SpecError(
          path, 0, 0,
          "unknown domain '" + domain +
              "' (the harness serves video, av, ecg, tvnews)");
    }
    std::cout << "\n";
  }
  if (scenario.loop.enabled && StreamsOf(scenario, "video").empty()) {
    std::cout << "note: [loop] enabled but the harness only loops video "
                 "streams; monitoring ran without rounds\n\n";
  }
}

void Describe(const Factories& factories) {
  const auto print = [](const std::string& domain, const auto& factory) {
    std::cout << "--- " << domain << " ---\n";
    for (const std::string& name : factory.Names()) {
      const auto& registration = factory.At(name);
      std::cout << name << " — " << registration.description << "\n";
      for (const auto& param : registration.params) {
        std::cout << "    " << param.key << " ("
                  << config::ParamTypeName(param.type) << ", default "
                  << param.default_text << ") — " << param.description
                  << "\n";
      }
    }
    std::cout << "\n";
  };
  std::cout << "registered assertions (use in a [suite <domain>] "
               "assertions list;\nparameters go in an [assertion <name>] "
               "section):\n\n";
  print("video", factories.video);
  print("av", factories.av);
  print("ecg", factories.ecg);
  print("tvnews", factories.tvnews);
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = common::Flags::Parse(argc, argv);
  flags.CheckAllowed({"configs", "describe"});

  Factories factories;
  if (flags.GetBool("describe", false)) {
    Describe(factories);
    return 0;
  }

  std::vector<std::string> paths = flags.Positional();
  if (const std::string dir = flags.GetString("configs", "");
      !dir.empty()) {
    std::error_code list_error;
    for (const auto& entry :
         std::filesystem::directory_iterator(dir, list_error)) {
      if (entry.path().extension() == ".conf") {
        paths.push_back(entry.path().string());
      }
    }
    if (list_error) {
      std::cerr << "--configs " << dir << ": " << list_error.message()
                << "\n";
      return 1;
    }
  }
  if (paths.empty()) {
    // Default: the repo's shipped scenarios, found from either the repo
    // root or a build/ subdirectory.
    for (const char* candidate : {"configs", "../configs"}) {
      if (std::filesystem::is_directory(candidate)) {
        for (const auto& entry :
             std::filesystem::directory_iterator(candidate)) {
          if (entry.path().extension() == ".conf") {
            paths.push_back(entry.path().string());
          }
        }
        break;
      }
    }
  }
  if (paths.empty()) {
    std::cerr << "no scenario files: pass paths, --configs DIR, or run "
                 "next to the repo's configs/ directory\n";
    return 1;
  }
  std::sort(paths.begin(), paths.end());

  std::vector<SummaryRow> summary;
  try {
    for (const std::string& path : paths) {
      RunScenario(path, factories, summary);
    }
  } catch (const config::SpecError& error) {
    std::cerr << "config error: " << error.what() << "\n";
    return 1;
  }

  std::cout << "=== summary (" << summary.size() << " domain runs over "
            << paths.size() << " scenarios) ===\n";
  common::TextTable table({"Scenario", "Domain", "Streams", "Examples",
                           "Events", "Shed", "Dropped", "p99 ms", "Wall s"});
  for (const SummaryRow& row : summary) {
    table.AddRow({row.scenario, row.domain, std::to_string(row.streams),
                  std::to_string(row.examples), std::to_string(row.events),
                  std::to_string(row.shed), std::to_string(row.dropped),
                  common::FormatDouble(row.p99_ms, 3),
                  common::FormatDouble(row.wall_seconds, 2)});
  }
  table.Print(std::cout);
  return 0;
}
