// One binary, N workloads, one runtime per workload: loads declarative
// scenario files (configs/*.conf, format in docs/CONFIGURATION.md) and runs
// each one through a single type-erased serve::Monitor — every stream of
// every domain the scenario declares shares one shard set, one admission
// policy, and one metrics registry (docs/API.md). Adding a workload is
// editing a config file, not writing a main().
//
//   * every suite comes from the serve::DomainRegistry the four domains
//     populate (src/*/factory.cpp) — erased builders with names like
//     `video.multibox`, parameters from [assertion ...] sections;
//   * runtime geometry and admission come from [runtime] / [admission] and
//     bound the whole scenario, mixed-domain ones included: a video batch
//     and an ECG batch contend for the same bounded queues;
//   * after every run the shared admission accounting must reconcile:
//     offered == scored + shed + dropped + errored, across domains;
//   * scenarios with `[loop] enabled = true` run the improvement loop on
//     their video streams: traffic is served in waves, each followed by a
//     select -> label -> retrain round and a hot-swap pickup.
//
// Build & run:
//   ./examples/scenario_harness ../configs/*.conf     # explicit files
//   ./examples/scenario_harness --configs ../configs  # every *.conf in DIR
//   ./examples/scenario_harness --describe            # registered domains
//   ./examples/scenario_harness --trace DIR           # Chrome traces to DIR
//   ./examples/scenario_harness --export-metrics DIR  # jsonl+prom to DIR
//   ./examples/scenario_harness --serve CONF          # network ingestion
//   ./examples/scenario_harness CONF --record TRACE   # record a trace
//   ./examples/scenario_harness CONF --replay TRACE --speed N
//
// --record captures the scenario's pregenerated traffic to a deterministic
// trace file; --replay drives a recorded trace back through a fresh
// monitor (in-process, or the full wire path with
// --replay-transport uds) at --speed x the recorded rate (0 = unpaced) and
// prints the canonical flag digest — identical for every equivalent replay
// (docs/REPLAY.md). --flags-out FILE writes the canonical JSON-lines flag
// document; --soak-seconds S repeats the replay until S seconds have
// elapsed, failing if any iteration's digest diverges.
//
// --serve hosts a [server] scenario behind a net::IngestServer instead of
// generating traffic locally: every [stream ...] is exposed over the wire
// (restricted to its `tenant =` when set), examples arrive as DATA frames
// from clients like examples/ingest_load, and the harness exits once at
// least one client connection has come and gone and none remain — then
// reconciles the wire accounting identity
//   offered == scored + shed + dropped + errored
//            + quota_rejected + decode_errors
// and prints the per-tenant wire table next to the usual monitor report.
#include <algorithm>
#include <chrono>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "av/factory.hpp"
#include "av/pipeline.hpp"
#include "common/check.hpp"
#include "common/example_gen.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "config/monitor_loader.hpp"
#include "config/scenario.hpp"
#include "ecg/factory.hpp"
#include "loop/improvement_loop.hpp"
#include "net/server.hpp"
#include "obs/exporter.hpp"
#include "replay/replay.hpp"
#include "replay/trace_file.hpp"
#include "serve/domains.hpp"
#include "serve/monitor.hpp"
#include "tvnews/factory.hpp"
#include "video/detector.hpp"
#include "video/factory.hpp"
#include "video/pipeline.hpp"
#include "video/world.hpp"

namespace {

using namespace omg;

/// One line of the end-of-run summary table.
struct SummaryRow {
  std::string scenario;
  std::string domains;
  std::size_t streams = 0;
  std::size_t examples = 0;
  std::size_t events = 0;
  std::size_t shed = 0;
  std::size_t dropped = 0;
  double p99_ms = 0.0;
  double wall_seconds = 0.0;
};

/// Per-stream prebuilt traffic, keyed by stream name. The generators live
/// in src/common/example_gen so the recorder and bench share them.
using TrafficMap = common::TrafficMap;

/// The scenario's stream specs for one domain, in declaration order.
std::vector<config::StreamSpec> StreamsOf(
    const config::ScenarioSpec& scenario, const std::string& domain) {
  std::vector<config::StreamSpec> streams;
  for (const config::StreamSpec& stream : scenario.streams) {
    if (stream.domain == domain) streams.push_back(stream);
  }
  return streams;
}

// -------------------------------------------------------------- reporting ---

/// The shared-runtime accounting identity: every offered example must land
/// in exactly one of scored / shed / dropped / errored, across all domains
/// of the scenario.
void CheckAccounting(const runtime::MetricsSnapshot& snapshot,
                     std::size_t offered) {
  const std::size_t scored = snapshot.examples_seen;
  const std::size_t shed = snapshot.TotalShedExamples();
  const std::size_t dropped = snapshot.TotalDroppedExamples();
  const std::size_t errored = snapshot.TotalErroredExamples();
  std::cout << "admission accounting: offered " << offered << " == scored "
            << scored << " + shed " << shed << " + dropped " << dropped
            << " + errored " << errored << "\n";
  common::Check(scored + shed + dropped + errored == offered,
                "shared admission accounting does not reconcile");
}

void PrintMonitorReport(const runtime::MetricsSnapshot& snapshot,
                        const std::vector<std::string>& errors) {
  common::TextTable table(
      {"Stream", "Assertion", "Fires", "Max sev", "Flag/ex"});
  for (const auto& stream : snapshot.streams) {
    for (const auto& [assertion, cell] : stream.assertions) {
      table.AddRow({stream.stream, assertion, std::to_string(cell.fires),
                    common::FormatDouble(cell.max_severity, 2),
                    common::FormatDouble(stream.FlaggedRate(assertion), 3)});
    }
  }
  table.Print(std::cout);
  common::TextTable shard_table({"Shard", "Examples", "Shed", "Dropped",
                                 "Peak depth", "p50 ms", "p95 ms", "p99 ms",
                                 "Busy %", "Q-wait ms"});
  for (const auto& shard : snapshot.shards) {
    shard_table.AddRow(
        {std::to_string(shard.shard), std::to_string(shard.examples),
         std::to_string(shard.shed_examples),
         std::to_string(shard.dropped_examples),
         std::to_string(shard.queue_depth_peak),
         common::FormatDouble(shard.latency.Quantile(0.50) * 1e3, 3),
         common::FormatDouble(shard.latency.Quantile(0.95) * 1e3, 3),
         common::FormatDouble(shard.latency.Quantile(0.99) * 1e3, 3),
         common::FormatDouble(shard.BusyFraction() * 100.0, 1),
         common::FormatDouble(shard.MeanQueueWaitSeconds() * 1e3, 3)});
  }
  shard_table.Print(std::cout);
  for (const auto& error : errors) {
    std::cout << "ingest error: " << error << "\n";
  }
}

SummaryRow Summarise(const config::ScenarioSpec& scenario,
                     const std::string& domains, std::size_t streams,
                     const runtime::MetricsSnapshot& snapshot,
                     double wall_seconds) {
  SummaryRow row;
  row.scenario = scenario.name;
  row.domains = domains;
  row.streams = streams;
  row.examples = snapshot.examples_seen;
  row.events = snapshot.events;
  row.shed = snapshot.TotalShedExamples();
  row.dropped = snapshot.TotalDroppedExamples();
  row.p99_ms = snapshot.MergedLatency().Quantile(0.99) * 1e3;
  row.wall_seconds = wall_seconds;
  return row;
}

std::string JoinedDomains(const config::ScenarioSpec& scenario) {
  std::string joined;
  for (const std::string& domain : scenario.Domains()) {
    if (!joined.empty()) joined += "+";
    joined += domain;
  }
  return joined;
}

// ---------------------------------------------------------------- serving ---

/// Serves every stream's pregenerated traffic through the scenario's one
/// Monitor, batches interleaved round-robin across streams so domains
/// genuinely contend for the shared shard queues. Returns offered count.
std::size_t ServeInterleaved(config::ScenarioMonitor& hosted,
                             TrafficMap& traffic) {
  struct Feed {
    const config::BoundStream* stream;
    std::vector<serve::AnyExample>* examples;
    std::size_t offset = 0;
  };
  std::vector<Feed> feeds;
  for (config::BoundStream& stream : hosted.streams) {
    const auto it = traffic.find(stream.spec.name);
    if (it == traffic.end()) continue;  // loop-owned stream
    feeds.push_back({&stream, &it->second});
  }
  std::size_t offered = 0;
  bool active = true;
  while (active) {
    active = false;
    for (Feed& feed : feeds) {
      if (feed.offset >= feed.examples->size()) continue;
      active = true;
      const std::size_t count = std::min(
          feed.stream->spec.batch, feed.examples->size() - feed.offset);
      const auto begin = feed.examples->begin() +
                         static_cast<std::ptrdiff_t>(feed.offset);
      std::vector<serve::AnyExample> batch(
          std::make_move_iterator(begin),
          std::make_move_iterator(begin + static_cast<std::ptrdiff_t>(count)));
      feed.offset += count;
      const serve::Result<serve::ObserveOutcome> outcome =
          hosted.monitor->ObserveBatch(feed.stream->handle,
                                       std::move(batch));
      common::Check(outcome.ok(),
                    outcome.ok() ? "" : outcome.error().message);
      offered += count;  // shed batches still count as offered
    }
  }
  return offered;
}

// ------------------------------------------------------------- loop mode ---

/// The VideoAssertionConfig a scenario's video suite parameters describe —
/// the mixed oracle's correction suite must score with the *same*
/// parameters as the deployed factory-built suite, or corrections would be
/// derived under a different configuration than the flags that selected
/// the candidates.
video::VideoAssertionConfig VideoConfigFromSpec(
    const config::SuiteSpec& spec) {
  video::VideoAssertionConfig config;
  for (const config::AssertionSpec& assertion : spec.assertions) {
    if (assertion.name == "video.multibox") {
      config.multibox_iou =
          assertion.params.GetDouble("iou", config.multibox_iou);
    } else if (assertion.name == "video.consistency") {
      config.temporal_threshold = assertion.params.GetDouble(
          "temporal_threshold", config.temporal_threshold);
      config.tracker.min_iou =
          assertion.params.GetDouble("tracker_iou", config.tracker.min_iou);
      config.tracker.max_coast_frames = assertion.params.GetSize(
          "tracker_max_misses", config.tracker.max_coast_frames);
    }
  }
  return config;
}

/// A loop-enabled scenario: video streams run the improvement loop live
/// (traffic in `loop.rounds` waves, one select -> label -> retrain round
/// and a hot-swap pickup after each); other domains' pregenerated traffic
/// rides along through the same Monitor, split across the waves.
SummaryRow RunLoopScenario(const config::ScenarioSpec& scenario,
                           config::ScenarioMonitor& hosted,
                           TrafficMap& traffic) {
  const config::SuiteSpec* suite_spec = scenario.SuiteFor("video");
  const config::LoopSpec& loop_spec = scenario.loop;
  const auto start = std::chrono::steady_clock::now();

  std::vector<const config::BoundStream*> video_streams;
  std::map<runtime::StreamId, std::size_t> video_index;
  for (const config::BoundStream& stream : hosted.streams) {
    if (stream.spec.domain == "video") {
      video_index.emplace(stream.handle.id(), video_streams.size());
      video_streams.push_back(&stream);
    }
  }

  video::NightStreetWorld seed_world(video::WorldConfig{},
                                     video_streams.front()->spec.seed);
  nn::Dataset pretrain = seed_world.PretrainingSet(500, 700);
  video::SsdDetector detector(video::DetectorConfig{},
                              seed_world.config().feature_dim,
                              video_streams.front()->spec.seed);
  detector.Pretrain(pretrain);

  // Retained live traffic, indexed by [video stream][example index] — what
  // the oracles resolve CandidateKeys (which carry Monitor stream ids)
  // against, via `video_index`.
  std::vector<std::unique_ptr<video::NightStreetWorld>> worlds;
  std::vector<std::vector<video::Frame>> frames;
  std::vector<std::vector<video::VideoExample>> deployed;
  for (const config::BoundStream* stream : video_streams) {
    worlds.push_back(std::make_unique<video::NightStreetWorld>(
        video::WorldConfig{}, stream->spec.seed));
    frames.emplace_back();
    deployed.emplace_back();
  }

  auto human = std::make_shared<loop::GroundTruthOracle>(
      [&frames, &video_index](const loop::CandidateKey& key) {
        return video::NightStreetWorld::LabelFrame(
            frames.at(video_index.at(key.stream_id)).at(key.example_index));
      });
  std::shared_ptr<loop::LabelOracle> oracle = human;
  if (loop_spec.oracle == "mixed") {
    auto correction_suite = std::make_shared<video::VideoSuite>(
        video::BuildVideoSuite(VideoConfigFromSpec(*suite_spec)));
    auto weak = std::make_shared<loop::WeakLabelOracle>(
        [&frames, &deployed, &video_index, correction_suite](
            std::span<const loop::CandidateKey> keys) {
          nn::Dataset rows;
          for (const auto& [stream_id, local] : video_index) {
            std::set<std::size_t> chosen;
            for (const auto& key : keys) {
              if (key.stream_id == stream_id) {
                chosen.insert(key.example_index);
              }
            }
            if (chosen.empty()) continue;
            correction_suite->consistency->Invalidate();
            rows.Append(video::MakeWeakLabelDataset(
                *correction_suite, frames[local], deployed[local], chosen));
          }
          return rows;
        },
        loop_spec.weak_weight);
    oracle = std::make_shared<loop::MixedOracle>(human, weak);
  }

  // The erased video suite's qualified names fix the store's columns — the
  // same names the Monitor's events carry.
  loop::ImprovementLoopConfig loop_config =
      config::ConfigLoader::MakeLoopConfig(
          loop_spec, hosted.assertion_names.at("video"),
          video::DetectorConfig{}.finetune_sgd);
  loop_config.retrain.replay_weight = 1.0;
  // Share the monitor's tracer (if [observability] attached one) so round /
  // retrain / model_hot_swap spans land in the same trace as serving.
  loop_config.tracer = hosted.monitor->tracer();
  loop::ImprovementLoop improvement(
      loop_config, config::ConfigLoader::MakeStrategy(loop_spec.strategy),
      oracle, detector.model(), pretrain);

  // Only video events feed the loop; other domains ride the same Monitor
  // without polluting the candidate store.
  serve::EventFilter video_only;
  video_only.domain = "video";
  serve::Subscription loop_subscription =
      hosted.monitor->Subscribe(video_only, improvement.sink());

  std::size_t offered = 0;
  std::uint64_t served_version = 0;
  std::size_t events_before = 0;
  std::size_t examples_before = 0;
  common::TextTable rounds_table({"Wave", "Candidates", "Selected", "Human",
                                  "Weak", "Fallback", "Flagged/ex"});
  for (std::size_t wave = 0; wave < loop_spec.rounds; ++wave) {
    // Hot-swap pickup point: between waves, never mid-batch.
    const loop::ModelHandle handle = improvement.registry().Current();
    if (handle.version != served_version) {
      detector.SetModel(*handle.model);
      served_version = handle.version;
    }
    for (std::size_t s = 0; s < video_streams.size(); ++s) {
      const config::BoundStream& stream = *video_streams[s];
      const std::size_t wave_frames = std::max<std::size_t>(
          1, stream.spec.examples / loop_spec.rounds);
      std::vector<serve::AnyExample> batch;
      for (const video::Frame& frame :
           worlds[s]->GenerateFrames(wave_frames)) {
        video::VideoExample example{frame.index, frame.timestamp,
                                    detector.Detect(frame)};
        frames[s].push_back(frame);
        deployed[s].push_back(example);
        batch.push_back(serve::AnyExample::Make(std::move(example)));
        if (batch.size() == stream.spec.batch) {
          offered += batch.size();
          common::Check(
              hosted.monitor->ObserveBatch(stream.handle, std::move(batch))
                  .ok(),
              "loop wave observe failed");
          batch.clear();
        }
      }
      if (!batch.empty()) {
        offered += batch.size();
        common::Check(
            hosted.monitor->ObserveBatch(stream.handle, std::move(batch))
                .ok(),
            "loop wave observe failed");
      }
    }
    // Ride-along domains: one wave's worth of their pregenerated traffic.
    for (const config::BoundStream& stream : hosted.streams) {
      const auto it = traffic.find(stream.spec.name);
      if (it == traffic.end() || it->second.empty()) continue;
      std::vector<serve::AnyExample>& examples = it->second;
      std::size_t quota = std::max<std::size_t>(
          1, stream.spec.examples / loop_spec.rounds);
      if (wave + 1 == loop_spec.rounds) quota = examples.size();
      quota = std::min(quota, examples.size());
      for (std::size_t begin = 0; begin < quota;
           begin += stream.spec.batch) {
        const std::size_t count =
            std::min(stream.spec.batch, quota - begin);
        std::vector<serve::AnyExample> batch(
            std::make_move_iterator(examples.begin() +
                                    static_cast<std::ptrdiff_t>(begin)),
            std::make_move_iterator(
                examples.begin() +
                static_cast<std::ptrdiff_t>(begin + count)));
        offered += count;
        common::Check(
            hosted.monitor->ObserveBatch(stream.handle, std::move(batch))
                .ok(),
            "ride-along observe failed");
      }
      examples.erase(examples.begin(),
                     examples.begin() + static_cast<std::ptrdiff_t>(quota));
    }
    hosted.monitor->Flush();

    const runtime::MetricsSnapshot snapshot = hosted.monitor->Metrics();
    const double flagged_rate =
        static_cast<double>(snapshot.events - events_before) /
        static_cast<double>(snapshot.examples_seen - examples_before);
    events_before = snapshot.events;
    examples_before = snapshot.examples_seen;

    const std::optional<loop::RoundStats> stats = improvement.RunRound();
    improvement.WaitForRetrains();
    rounds_table.AddRow(
        {std::to_string(wave),
         stats ? std::to_string(stats->candidates) : "-",
         stats ? std::to_string(stats->selected) : "-",
         stats ? std::to_string(stats->human_labels) : "-",
         stats ? std::to_string(stats->weak_labels) : "-",
         stats ? (stats->used_fallback ? "yes" : "no") : "-",
         common::FormatDouble(flagged_rate, 3)});
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::cout << "improvement loop (" << loop_spec.strategy << " strategy, "
            << oracle->Name() << " oracle, budget " << loop_spec.budget
            << "/round, final model v" << served_version << "):\n";
  rounds_table.Print(std::cout);
  const runtime::MetricsSnapshot snapshot = hosted.monitor->Metrics();
  CheckAccounting(snapshot, offered);
  PrintMonitorReport(snapshot, hosted.monitor->Errors());
  return Summarise(scenario, JoinedDomains(scenario) + "+loop",
                   hosted.streams.size(), snapshot, wall);
}

// ------------------------------------------------------------ serve mode ---

net::IngestServerOptions ServerOptionsFromSpec(
    const config::ScenarioSpec& scenario) {
  net::IngestServerOptions options;
  options.uds_path = scenario.server.uds_path;
  options.tcp = scenario.server.tcp;
  options.tcp_port = static_cast<std::uint16_t>(scenario.server.tcp_port);
  options.handler_threads = scenario.server.handler_threads;
  options.max_frame_bytes = scenario.server.max_frame_bytes;
  for (const config::TenantSpec& tenant : scenario.tenants) {
    net::TenantOptions t;
    t.name = tenant.name;
    t.token = tenant.token;
    t.quota_eps = tenant.quota_eps;
    t.burst = tenant.burst;
    t.shed_floor = tenant.shed_floor;
    t.has_shed_floor = tenant.has_shed_floor;
    options.tenants.push_back(std::move(t));
  }
  return options;
}

/// The wire-mode accounting identity: every example a client offered must
/// land in exactly one of the monitor's outcomes or one of the server's
/// wire-side rejections.
void CheckWireAccounting(const runtime::MetricsSnapshot& snapshot,
                         const net::TenantStats& totals) {
  const std::uint64_t scored = snapshot.examples_seen;
  const std::uint64_t shed = snapshot.TotalShedExamples();
  const std::uint64_t dropped = snapshot.TotalDroppedExamples();
  const std::uint64_t errored = snapshot.TotalErroredExamples();
  std::cout << "wire accounting: offered " << totals.offered << " == scored "
            << scored << " + shed " << shed << " + dropped " << dropped
            << " + errored " << errored << " + quota_rejected "
            << totals.quota_rejected << " + decode_errors "
            << totals.decode_errors << "\n";
  common::Check(scored + shed + dropped + errored + totals.quota_rejected +
                        totals.decode_errors ==
                    totals.offered,
                "wire admission accounting does not reconcile");
}

void PrintTenantReport(const net::IngestServerStats& stats) {
  common::TextTable table({"Tenant", "Offered", "Admitted", "Shed",
                           "Quota rej", "Decode err"});
  for (const auto& [name, tenant] : stats.tenants) {
    table.AddRow({name, std::to_string(tenant.offered),
                  std::to_string(tenant.admitted),
                  std::to_string(tenant.shed),
                  std::to_string(tenant.quota_rejected),
                  std::to_string(tenant.decode_errors)});
  }
  table.AddRow({"(total)", std::to_string(stats.totals.offered),
                std::to_string(stats.totals.admitted),
                std::to_string(stats.totals.shed),
                std::to_string(stats.totals.quota_rejected),
                std::to_string(stats.totals.decode_errors)});
  table.Print(std::cout);
}

/// Hosts the scenario behind an IngestServer until every client connection
/// has come and gone: waits for the first connection, then for the active
/// count to return to zero, then stops, reconciles, and reports.
SummaryRow RunServeScenario(const config::ScenarioSpec& scenario,
                            config::ScenarioMonitor& hosted,
                            const serve::DomainRegistry& domains) {
  net::IngestServer server(ServerOptionsFromSpec(scenario), *hosted.monitor,
                           domains);
  for (const config::BoundStream& stream : hosted.streams) {
    server.ExposeStream(stream.handle, stream.spec.tenant);
  }
  const serve::Result<net::ServerEndpoints> endpoints = server.Start();
  common::Check(endpoints.ok(),
                endpoints.ok() ? "" : endpoints.error().message);
  std::cout << "serving:";
  if (!endpoints.value().uds_path.empty()) {
    std::cout << " uds " << endpoints.value().uds_path;
  }
  if (endpoints.value().tcp_port != 0) {
    std::cout << " tcp 127.0.0.1:" << endpoints.value().tcp_port;
  }
  std::cout << " (" << scenario.tenants.size() << " tenants, "
            << hosted.streams.size() << " streams; waiting for clients)\n";

  const auto start = std::chrono::steady_clock::now();
  net::IngestServerStats stats;
  for (;;) {
    stats = server.Stats();
    if (stats.connections_seen > 0 && stats.connections_active == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  hosted.monitor->Flush();
  server.Stop();
  stats = server.Stats();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::cout << "served " << stats.connections_seen << " connections, "
            << stats.frames << " frames\n";
  PrintTenantReport(stats);
  const runtime::MetricsSnapshot snapshot = hosted.monitor->Metrics();
  CheckWireAccounting(snapshot, stats.totals);
  PrintMonitorReport(snapshot, hosted.monitor->Errors());
  return Summarise(scenario, JoinedDomains(scenario) + "+net",
                   hosted.streams.size(), snapshot, wall);
}

// ------------------------------------------------------------- scenarios ---

/// --trace / --export-metrics override the scenario's [observability]
/// section: tracing is forced on and missing output paths are derived from
/// the scenario name under the given directories. A [observability] section
/// in the file still controls ring sizing, sampling, and exporter cadence.
void ApplyObservabilityOverrides(config::ScenarioSpec& scenario,
                                 const std::string& trace_dir,
                                 const std::string& export_dir) {
  if (!trace_dir.empty()) {
    scenario.observability.trace = true;
    if (scenario.observability.trace_path.empty()) {
      scenario.observability.trace_path =
          trace_dir + "/" + scenario.name + ".trace.json";
    }
  }
  if (!export_dir.empty()) {
    if (scenario.observability.metrics_jsonl_path.empty()) {
      scenario.observability.metrics_jsonl_path =
          export_dir + "/" + scenario.name + ".metrics.jsonl";
    }
    if (scenario.observability.metrics_prometheus_path.empty()) {
      scenario.observability.metrics_prometheus_path =
          export_dir + "/" + scenario.name + ".metrics.prom";
    }
  }
}

void RunScenario(const std::string& path,
                 const serve::DomainRegistry& domains,
                 const std::string& trace_dir, const std::string& export_dir,
                 bool serve, std::vector<SummaryRow>& summary) {
  config::ScenarioSpec scenario = config::ConfigLoader::LoadFile(path);
  ApplyObservabilityOverrides(scenario, trace_dir, export_dir);
  if (serve && !scenario.server.enabled) {
    throw config::SpecError(scenario.source, 0, 0,
                            "--serve needs an enabled [server] section in "
                            "the scenario");
  }
  std::cout << "=== scenario '" << scenario.name << "' (" << path << ")\n";
  if (!scenario.description.empty()) {
    std::cout << "    " << scenario.description << "\n";
  }
  std::cout << "    one monitor: " << scenario.runtime.shards << " shards, "
            << "window " << scenario.runtime.window << ", queue cap "
            << scenario.runtime.queue_capacity << ", "
            << runtime::AdmissionPolicyName(scenario.admission.policy)
            << " admission, domains " << JoinedDomains(scenario) << "\n\n";

  // The loop path drives video streams only; a loop-enabled scenario
  // without any falls back to plain monitoring (with a note below).
  const bool run_loop = !serve && scenario.loop.enabled &&
                        !StreamsOf(scenario, "video").empty();
  config::ScenarioMonitor hosted =
      config::BuildScenarioMonitor(scenario, domains);
  // Serve mode takes its traffic off the wire; nothing to pregenerate.
  TrafficMap traffic;
  if (!serve) {
    traffic =
        common::GenerateScenarioTraffic(scenario, run_loop ? "video" : "");
  }

  // Background snapshotter over the monitor's registry; Stop() below takes
  // one final export so the files reflect the finished run.
  std::unique_ptr<obs::MetricsExporter> exporter;
  if (scenario.observability.ExporterEnabled()) {
    obs::MetricsExporterOptions exporter_options;
    exporter_options.period =
        std::chrono::milliseconds(scenario.observability.export_period_ms);
    exporter_options.jsonl_path = scenario.observability.metrics_jsonl_path;
    exporter_options.prometheus_path =
        scenario.observability.metrics_prometheus_path;
    serve::Monitor* monitor = hosted.monitor.get();
    exporter = std::make_unique<obs::MetricsExporter>(
        exporter_options, [monitor] { return monitor->Metrics(); });
    exporter->Start();
  }

  if (serve) {
    summary.push_back(RunServeScenario(scenario, hosted, domains));
  } else if (run_loop) {
    summary.push_back(RunLoopScenario(scenario, hosted, traffic));
  } else {
    const auto start = std::chrono::steady_clock::now();
    const std::size_t offered = ServeInterleaved(hosted, traffic);
    hosted.monitor->Flush();
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    const runtime::MetricsSnapshot snapshot = hosted.monitor->Metrics();
    CheckAccounting(snapshot, offered);
    PrintMonitorReport(snapshot, hosted.monitor->Errors());
    summary.push_back(Summarise(scenario, JoinedDomains(scenario),
                                hosted.streams.size(), snapshot, wall));
    if (scenario.loop.enabled) {
      std::cout << "note: [loop] enabled but the harness only loops video "
                   "streams; monitoring ran without rounds\n";
    }
  }

  if (exporter != nullptr) {
    exporter->Stop();
    std::cout << "metrics exported:";
    if (!scenario.observability.metrics_jsonl_path.empty()) {
      std::cout << " " << scenario.observability.metrics_jsonl_path;
    }
    if (!scenario.observability.metrics_prometheus_path.empty()) {
      std::cout << " " << scenario.observability.metrics_prometheus_path;
    }
    std::cout << "\n";
  }
  if (scenario.observability.trace &&
      !scenario.observability.trace_path.empty()) {
    std::ofstream out(scenario.observability.trace_path);
    common::Check(out.good(), "cannot open trace output " +
                                  scenario.observability.trace_path);
    hosted.monitor->WriteChromeTrace(out);
    std::cout << "trace written: " << scenario.observability.trace_path
              << "\n";
  }
  std::cout << "\n";
}

// ---------------------------------------------------------- record/replay ---

/// Renders a digest the way check_replay_golden.py and docs quote them:
/// 16 lowercase hex digits.
std::string DigestHex(std::uint64_t digest) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(digest));
  return buffer;
}

/// A bare `--record` / `--replay` (flag value "true") falls back to the
/// scenario's [replay] trace_path.
std::string ResolveTracePath(const std::string& flag_value,
                             const config::ScenarioSpec& scenario) {
  if (!flag_value.empty() && flag_value != "true") return flag_value;
  return scenario.replay.trace_path;
}

int RunRecordMode(const std::string& config_path,
                  const serve::DomainRegistry& domains,
                  const std::string& record_flag) {
  const config::ScenarioSpec scenario =
      config::ConfigLoader::LoadFile(config_path);
  const std::string trace_path = ResolveTracePath(record_flag, scenario);
  if (trace_path.empty()) {
    std::cerr << "--record needs a path (or a [replay] trace_path in "
              << config_path << ")\n";
    return 1;
  }
  TrafficMap traffic = common::GenerateScenarioTraffic(scenario);
  const serve::Result<replay::RecordReport> report =
      replay::RecordScenarioTrace(scenario, domains, traffic, trace_path,
                                  scenario.replay.record_eps);
  if (!report.ok()) {
    std::cerr << "record failed: " << report.error().message << "\n";
    return 1;
  }
  std::cout << "recorded '" << scenario.name << "' to " << trace_path
            << ": " << report.value().records << " records, "
            << report.value().examples << " examples, scenario hash "
            << DigestHex(report.value().scenario_hash) << "\n";
  return 0;
}

int RunReplayMode(const std::string& config_path,
                  const serve::DomainRegistry& domains,
                  const common::Flags& flags) {
  const config::ScenarioSpec scenario =
      config::ConfigLoader::LoadFile(config_path);
  const std::string trace_path =
      ResolveTracePath(flags.GetString("replay", ""), scenario);
  if (trace_path.empty()) {
    std::cerr << "--replay needs a path (or a [replay] trace_path in "
              << config_path << ")\n";
    return 1;
  }
  serve::Result<replay::TraceReader> reader =
      replay::TraceReader::Open(trace_path);
  if (!reader.ok()) {
    std::cerr << "replay failed: " << reader.error().message << "\n";
    return 1;
  }

  replay::ReplayOptions options;
  options.speed = flags.GetDouble("speed", scenario.replay.speed);
  const std::string transport =
      flags.GetString("replay-transport", "inproc");
  if (transport != "inproc" && transport != "uds") {
    std::cerr << "--replay-transport must be inproc or uds\n";
    return 1;
  }
  options.over_wire = transport == "uds";

  const replay::TraceInfo& info = reader.value().info();
  std::cout << "=== replay '" << info.scenario << "' from " << trace_path
            << " (" << info.records << " records, " << info.examples
            << " examples, " << info.streams.size() << " streams) at speed "
            << common::FormatDouble(options.speed, 2) << ", " << transport
            << "\n";

  const double soak_seconds = flags.GetDouble("soak-seconds", 0.0);
  const auto soak_start = std::chrono::steady_clock::now();
  std::size_t iterations = 0;
  std::optional<std::uint64_t> first_digest;
  replay::ReplayReport last;
  do {
    const serve::Result<replay::ReplayReport> replayed =
        replay::ReplayTrace(scenario, domains, reader.value(), options);
    if (!replayed.ok()) {
      std::cerr << "replay failed: " << replayed.error().message << "\n";
      return 1;
    }
    last = replayed.value();
    ++iterations;
    if (!last.accounted) {
      std::cerr << "replay accounting does not reconcile: offered "
                << last.offered << " != scored " << last.scored << " + shed "
                << last.shed << " + dropped " << last.dropped
                << " + errored " << last.errored << "\n";
      return 1;
    }
    if (first_digest.has_value() && last.flags.digest != *first_digest) {
      std::cerr << "replay digest diverged on iteration " << iterations
                << ": " << DigestHex(last.flags.digest) << " != "
                << DigestHex(*first_digest)
                << " — replay is not deterministic\n";
      return 1;
    }
    first_digest = last.flags.digest;
  } while (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         soak_start)
               .count() < soak_seconds);

  std::cout << "replayed " << iterations << "x: offered " << last.offered
            << " == scored " << last.scored << " + shed " << last.shed
            << " + dropped " << last.dropped << " + errored " << last.errored
            << ", " << last.flags.lines.size() << " flags, wall "
            << common::FormatDouble(last.elapsed_seconds, 3) << "s\n";
  std::cout << "flag digest: " << DigestHex(last.flags.digest) << "\n";

  if (const std::string out_path = flags.GetString("flags-out", "");
      !out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary);
    common::Check(out.good(), "cannot open flags output " + out_path);
    for (const std::string& line : last.flags.lines) out << line;
    std::cout << "flags written: " << out_path << "\n";
  }
  return 0;
}

void Describe(const serve::DomainRegistry& domains) {
  std::cout << "registered domains and assertions (use in a "
               "[suite <domain>] assertions list;\nparameters go in an "
               "[assertion <name>] section):\n\n";
  for (const std::string& name : domains.Names()) {
    std::cout << "--- " << name << " ---\n";
    domains.At(name).describe(std::cout);
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = common::Flags::Parse(argc, argv);
  flags.CheckAllowed({"configs", "describe", "trace", "export-metrics",
                      "serve", "record", "replay", "speed", "flags-out",
                      "replay-transport", "soak-seconds"});

  const serve::DomainRegistry domains = serve::MakeDefaultDomainRegistry();
  if (flags.GetBool("describe", false)) {
    Describe(domains);
    return 0;
  }

  // Record/replay modes take exactly one scenario config positionally.
  const std::string record_flag = flags.GetString("record", "");
  const std::string replay_flag = flags.GetString("replay", "");
  if (!record_flag.empty() || !replay_flag.empty()) {
    if (!record_flag.empty() && !replay_flag.empty()) {
      std::cerr << "--record and --replay are mutually exclusive\n";
      return 1;
    }
    if (flags.Positional().size() != 1) {
      std::cerr << "--record/--replay take exactly one scenario config\n";
      return 1;
    }
    try {
      return record_flag.empty()
                 ? RunReplayMode(flags.Positional().front(), domains, flags)
                 : RunRecordMode(flags.Positional().front(), domains,
                                 record_flag);
    } catch (const config::SpecError& error) {
      std::cerr << "config error: " << error.what() << "\n";
      return 1;
    }
  }

  std::vector<std::string> paths = flags.Positional();
  // `--serve CONF` (valued) and `CONF --serve` (bare boolean + positional)
  // both work; the flag parser decides which form it saw.
  const std::string serve_value = flags.GetString("serve", "");
  const bool serve = !serve_value.empty();
  if (serve && serve_value != "true") paths.push_back(serve_value);
  if (const std::string dir = flags.GetString("configs", "");
      !dir.empty()) {
    std::error_code list_error;
    for (const auto& entry :
         std::filesystem::directory_iterator(dir, list_error)) {
      if (entry.path().extension() == ".conf") {
        paths.push_back(entry.path().string());
      }
    }
    if (list_error) {
      std::cerr << "--configs " << dir << ": " << list_error.message()
                << "\n";
      return 1;
    }
  }
  if (paths.empty()) {
    // Default: the repo's shipped scenarios, found from either the repo
    // root or a build/ subdirectory.
    for (const char* candidate : {"configs", "../configs"}) {
      if (std::filesystem::is_directory(candidate)) {
        for (const auto& entry :
             std::filesystem::directory_iterator(candidate)) {
          if (entry.path().extension() == ".conf") {
            paths.push_back(entry.path().string());
          }
        }
        break;
      }
    }
  }
  if (paths.empty()) {
    std::cerr << "no scenario files: pass paths, --configs DIR, or run "
                 "next to the repo's configs/ directory\n";
    return 1;
  }
  std::sort(paths.begin(), paths.end());

  const std::string trace_dir = flags.GetString("trace", "");
  const std::string export_dir = flags.GetString("export-metrics", "");
  if (serve && paths.size() != 1) {
    std::cerr << "--serve hosts exactly one scenario; pass one file\n";
    return 1;
  }
  for (const std::string& dir : {trace_dir, export_dir}) {
    if (dir.empty()) continue;
    std::error_code make_error;
    std::filesystem::create_directories(dir, make_error);
    if (make_error) {
      std::cerr << "cannot create " << dir << ": " << make_error.message()
                << "\n";
      return 1;
    }
  }

  std::vector<SummaryRow> summary;
  try {
    for (const std::string& path : paths) {
      RunScenario(path, domains, trace_dir, export_dir, serve, summary);
    }
  } catch (const config::SpecError& error) {
    std::cerr << "config error: " << error.what() << "\n";
    return 1;
  }

  std::cout << "=== summary (" << summary.size() << " scenarios, one "
            << "monitor each) ===\n";
  common::TextTable table({"Scenario", "Domains", "Streams", "Examples",
                           "Events", "Shed", "Dropped", "p99 ms", "Wall s"});
  for (const SummaryRow& row : summary) {
    table.AddRow({row.scenario, row.domains, std::to_string(row.streams),
                  std::to_string(row.examples), std::to_string(row.events),
                  std::to_string(row.shed), std::to_string(row.dropped),
                  common::FormatDouble(row.p99_ms, 3),
                  common::FormatDouble(row.wall_seconds, 2)});
  }
  table.Print(std::cout);
  return 0;
}
