// The paper's Figure-1 cycle running online, end to end, on two domains:
// serve live traffic -> assertions flag failures -> BAL picks what to label
// -> oracles label (simulated human + consistency weak labels) -> a
// background worker fine-tunes -> the new model version is hot-swapped into
// serving between batches -> the flagged rate falls.
//
//   * video: night-street frames through the multibox/flicker/appear suite;
//     labels mix ground truth with down-weighted consistency corrections.
//   * ecg: patient records through the 30 s "ECG" assertion; BAL falls back
//     to uncertainty sampling fed by live model confidences.
//
// Build & run:  ./examples/improvement_loop [--rounds N] [--seed N]
#include <iostream>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "bandit/bal.hpp"
#include "bandit/strategy.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "ecg/ecg.hpp"
#include "loop/improvement_loop.hpp"
#include "runtime/service.hpp"
#include "video/assertions.hpp"
#include "video/detector.hpp"
#include "video/pipeline.hpp"
#include "video/world.hpp"

namespace {

using namespace omg;

void PrintRounds(const std::string& domain,
                 const std::vector<std::string>& assertions,
                 const std::vector<std::optional<loop::RoundStats>>& rounds,
                 const std::vector<double>& flagged_rates,
                 const runtime::MetricsSnapshot& final_snapshot) {
  common::TextTable table({"Round", "Candidates", "Selected", "Human",
                           "Weak", "Fallback", "Flagged/ex"});
  for (std::size_t r = 0; r < rounds.size(); ++r) {
    // A traffic round whose store held nothing labelable is skipped by the
    // scheduler (nullopt) but its flagged rate is still worth showing.
    const std::optional<loop::RoundStats>& stats = rounds[r];
    table.AddRow({std::to_string(r),
                  stats ? std::to_string(stats->candidates) : "-",
                  stats ? std::to_string(stats->selected) : "-",
                  stats ? std::to_string(stats->human_labels) : "-",
                  stats ? std::to_string(stats->weak_labels) : "-",
                  stats ? (stats->used_fallback ? "yes" : "no") : "-",
                  common::FormatDouble(flagged_rates[r], 3)});
  }
  table.Print(std::cout);
  std::cout << "cumulative per-assertion flagged rate:";
  for (const std::string& assertion : assertions) {
    std::cout << "  " << assertion << "="
              << common::FormatDouble(final_snapshot.FlaggedRate(assertion),
                                      3);
  }
  std::cout << "\n\n";
  (void)domain;
}

/// Video: BAL over live night-street traffic, human + weak labels.
void RunVideoLoop(std::size_t rounds, std::uint64_t seed) {
  std::cout << "--- video (night-street): BAL + human + weak labels ---\n";
  const std::size_t kFramesPerRound = 200;
  const std::size_t kBatch = 25;

  video::NightStreetWorld world(video::WorldConfig{}, seed);
  nn::Dataset pretrain = world.PretrainingSet(500, 700);
  video::SsdDetector detector(video::DetectorConfig{},
                              world.config().feature_dim, seed);
  detector.Pretrain(pretrain);

  std::vector<video::Frame> frames;          // retained live traffic
  std::vector<video::VideoExample> deployed;
  auto correction_suite =
      std::make_shared<video::VideoSuite>(video::BuildVideoSuite());

  auto human = std::make_shared<loop::GroundTruthOracle>(
      [&frames](const loop::CandidateKey& key) {
        return video::NightStreetWorld::LabelFrame(
            frames.at(key.example_index));
      });
  auto weak = std::make_shared<loop::WeakLabelOracle>(
      [&frames, &deployed, correction_suite](
          std::span<const loop::CandidateKey> keys) {
        std::set<std::size_t> chosen;
        for (const auto& key : keys) chosen.insert(key.example_index);
        correction_suite->consistency->Invalidate();
        return video::MakeWeakLabelDataset(*correction_suite, frames,
                                           deployed, chosen);
      },
      /*weak_weight=*/0.25);

  loop::ImprovementLoopConfig config;
  config.assertion_names = {"multibox", "flicker", "appear"};
  config.round.budget = 30;
  config.retrain.sgd = video::DetectorConfig{}.finetune_sgd;
  config.retrain.sgd.epochs = 20;
  config.retrain.replay_weight = 1.0;
  config.seed = seed + 7;
  loop::ImprovementLoop improvement(
      config,
      std::make_unique<bandit::BalStrategy>(
          bandit::BalConfig{}, std::make_unique<bandit::RandomStrategy>()),
      std::make_shared<loop::MixedOracle>(human, weak), detector.model(),
      pretrain);

  runtime::RuntimeConfig service_config;
  service_config.workers = 2;
  service_config.window = 48;
  service_config.settle_lag = 8;
  runtime::MonitorService<video::VideoExample> service(service_config, [] {
    auto built =
        std::make_shared<video::VideoSuite>(video::BuildVideoSuite());
    return runtime::MonitorService<video::VideoExample>::SuiteBundle{
        std::shared_ptr<core::AssertionSuite<video::VideoExample>>(
            built, &built->suite),
        [built] { built->consistency->Invalidate(); }};
  });
  service.AddSink(improvement.sink());
  const runtime::StreamId id = service.RegisterStream("cam-live");

  std::uint64_t served_version = 0;
  std::size_t events_before = 0;
  std::size_t examples_before = 0;
  std::vector<double> flagged_rates;
  std::vector<std::optional<loop::RoundStats>> round_stats;
  for (std::size_t round = 0; round < rounds; ++round) {
    std::vector<video::VideoExample> batch;
    for (const video::Frame& frame : world.GenerateFrames(kFramesPerRound)) {
      if (batch.empty()) {  // hot-swap pickup point, between batches
        const loop::ModelHandle handle = improvement.registry().Current();
        if (handle.version != served_version) {
          detector.SetModel(*handle.model);
          served_version = handle.version;
        }
      }
      video::VideoExample example{frame.index, frame.timestamp,
                                  detector.Detect(frame)};
      frames.push_back(frame);
      deployed.push_back(example);
      batch.push_back(std::move(example));
      if (batch.size() == kBatch) {
        service.ObserveBatch(id, std::move(batch));
        batch.clear();
      }
    }
    if (!batch.empty()) service.ObserveBatch(id, std::move(batch));
    service.Flush();

    const runtime::MetricsSnapshot snapshot = service.Metrics();
    flagged_rates.push_back(
        static_cast<double>(snapshot.events - events_before) /
        static_cast<double>(snapshot.examples_seen - examples_before));
    events_before = snapshot.events;
    examples_before = snapshot.examples_seen;

    round_stats.push_back(improvement.RunRound());
    improvement.WaitForRetrains();
  }
  PrintRounds("video", config.assertion_names, round_stats, flagged_rates,
              service.Metrics());
}

/// ECG: BAL with an uncertainty fallback fed by live model confidences.
void RunEcgLoop(std::size_t rounds, std::uint64_t seed) {
  std::cout << "--- ecg (30s consistency): BAL + uncertainty fallback ---\n";
  const std::size_t kRecordsPerRound = 8;

  ecg::EcgGenerator generator(ecg::EcgConfig{}, seed);
  nn::Dataset pretrain = generator.PretrainingSet(600);
  ecg::EcgClassifier classifier(ecg::EcgClassifierConfig{},
                                generator.config().feature_dim, seed);
  classifier.Pretrain(pretrain);

  std::vector<ecg::EcgWindow> windows;  // retained live traffic

  auto oracle = std::make_shared<loop::GroundTruthOracle>(
      [&windows](const loop::CandidateKey& key) {
        const ecg::EcgWindow& window = windows.at(key.example_index);
        nn::Dataset data;
        data.Add(window.features, static_cast<std::size_t>(window.truth));
        return data;
      });

  loop::ImprovementLoopConfig config;
  config.assertion_names = {"ECG"};
  config.round.budget = 20;
  config.retrain.sgd = ecg::EcgClassifierConfig{}.finetune_sgd;
  config.retrain.sgd.epochs = 20;
  config.retrain.replay_weight = 1.0;
  config.seed = seed + 11;
  loop::ImprovementLoop improvement(
      config,
      std::make_unique<bandit::BalStrategy>(
          bandit::BalConfig{},
          std::make_unique<bandit::UncertaintyStrategy>()),
      oracle, classifier.model(), pretrain,
      // Live confidences for the uncertainty fallback.
      [&windows, &classifier](std::span<const loop::CandidateKey> keys) {
        std::vector<double> confidences;
        confidences.reserve(keys.size());
        for (const auto& key : keys) {
          confidences.push_back(
              classifier.Confidence(windows.at(key.example_index)));
        }
        return confidences;
      });

  runtime::RuntimeConfig service_config;
  service_config.workers = 2;
  service_config.window = 80;
  service_config.settle_lag = 8;
  runtime::MonitorService<ecg::EcgExample> service(service_config, [] {
    auto built = std::make_shared<ecg::EcgSuite>(ecg::BuildEcgSuite());
    return runtime::MonitorService<ecg::EcgExample>::SuiteBundle{
        std::shared_ptr<core::AssertionSuite<ecg::EcgExample>>(
            built, &built->suite),
        [built] { built->consistency->Invalidate(); }};
  });
  service.AddSink(improvement.sink());
  const runtime::StreamId id = service.RegisterStream("icu-live");

  std::uint64_t served_version = 0;
  std::size_t events_before = 0;
  std::size_t examples_before = 0;
  std::vector<double> flagged_rates;
  std::vector<std::optional<loop::RoundStats>> round_stats;
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t r = 0; r < kRecordsPerRound; ++r) {
      // One record per batch; the model is picked up between records.
      const loop::ModelHandle handle = improvement.registry().Current();
      if (handle.version != served_version) {
        classifier.SetModel(*handle.model);
        served_version = handle.version;
      }
      std::vector<ecg::EcgExample> batch;
      for (const ecg::EcgWindow& window : generator.GenerateRecords(1)) {
        batch.push_back({window.record, window.timestamp,
                         classifier.Predict(window)});
        windows.push_back(window);
      }
      service.ObserveBatch(id, std::move(batch));
    }
    service.Flush();

    const runtime::MetricsSnapshot snapshot = service.Metrics();
    flagged_rates.push_back(
        static_cast<double>(snapshot.events - events_before) /
        static_cast<double>(snapshot.examples_seen - examples_before));
    events_before = snapshot.events;
    examples_before = snapshot.examples_seen;

    round_stats.push_back(improvement.RunRound());
    improvement.WaitForRetrains();
  }
  PrintRounds("ecg", config.assertion_names, round_stats, flagged_rates,
              service.Metrics());
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = common::Flags::Parse(argc, argv);
  flags.CheckAllowed({"rounds", "seed"});
  const auto rounds = static_cast<std::size_t>(flags.GetInt("rounds", 6));
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));

  std::cout << "=== online continuous-improvement loop ===\n\n";
  RunVideoLoop(rounds, seed);
  RunEcgLoop(rounds, seed);
  return 0;
}
