// Serving all four paper deployments through ONE type-erased facade
// monitor (§2.3 at serving scale; see src/serve/ and docs/API.md).
//
// PR 3's version of this example instantiated one templated
// ShardedMonitorService<Example> per domain — four runtimes, four thread
// pools, four metrics namespaces. The serve::Monitor facade collapses them:
// eight streams across video / av / ecg / tvnews register against a single
// sharded runtime, so every domain shares the same worker threads, bounded
// queues, admission policy, and dashboard. Suites are erased per domain
// with serve::EraseSuiteFactory (assertion names come out qualified, e.g.
// "video/flicker"), examples are wrapped with serve::AnyExample::Make, and
// sinks attach through filtered subscriptions.
//
// Build & run:  ./examples/runtime_serving [--frames N] [--shards N]
//               [--policy block|drop_oldest|shed_below_severity]
//               [--trace FILE.json] [--export-metrics PREFIX]
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "av/pipeline.hpp"
#include "common/check.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "ecg/ecg.hpp"
#include "runtime/admission.hpp"
#include "runtime/event_sink.hpp"
// The domain factory headers carry the DomainTraits specializations that
// let AnyExample::Make wrap each domain's example type.
#include "av/factory.hpp"
#include "ecg/factory.hpp"
#include "obs/exporter.hpp"
#include "obs/tracer.hpp"
#include "serve/monitor.hpp"
#include "tvnews/factory.hpp"
#include "video/assertions.hpp"
#include "video/detector.hpp"
#include "video/factory.hpp"
#include "video/world.hpp"

namespace {

using namespace omg;

/// Unwraps a facade Result or dies with its message (example-quality error
/// handling; a real service would branch on result.code()).
template <typename T>
T Expect(serve::Result<T> result, const std::string& what) {
  common::Check(result.ok(),
                result.ok() ? "" : what + ": " + result.error().message);
  return std::move(result.value());
}

/// Registers one stream and serves its pregenerated examples in batches.
template <typename Example>
void ServeStream(serve::Monitor& monitor, const std::string& domain,
                 serve::AnySuiteFactory suite_factory,
                 const std::string& name, std::vector<Example> examples) {
  serve::StreamOptions options;
  options.name = name;
  const serve::StreamHandle handle = Expect(
      monitor.RegisterStream(domain, std::move(suite_factory), options),
      "RegisterStream " + name);
  constexpr std::size_t kBatch = 64;
  std::vector<serve::AnyExample> batch;
  batch.reserve(kBatch);
  for (Example& example : examples) {
    batch.push_back(serve::AnyExample::Make(std::move(example)));
    if (batch.size() == kBatch) {
      Expect(monitor.ObserveBatch(handle, std::move(batch)),
             "ObserveBatch " + name);
      batch.clear();
    }
  }
  if (!batch.empty()) {
    Expect(monitor.ObserveBatch(handle, std::move(batch)),
           "ObserveBatch " + name);
  }
}

/// Video: two night-street camera feeds through one pretrained detector.
void ServeVideo(serve::Monitor& monitor, std::size_t frames,
                std::uint64_t seed) {
  video::NightStreetWorld world(video::WorldConfig{}, seed);
  video::SsdDetector detector(video::DetectorConfig{},
                              world.config().feature_dim, seed);
  detector.Pretrain(world.PretrainingSet(500, 700));

  const auto suite_factory = serve::EraseSuiteFactory<video::VideoExample>(
      "video", [] {
        auto built = std::make_shared<video::VideoSuite>(
            video::BuildVideoSuite());
        return runtime::SuiteBundle<video::VideoExample>{
            // Aliasing share: the bundle keeps the whole VideoSuite (and
            // its consistency analyzer) alive through the suite pointer.
            std::shared_ptr<core::AssertionSuite<video::VideoExample>>(
                built, &built->suite),
            [built] { built->consistency->Invalidate(); }};
      });
  std::uint64_t feed_seed = seed;
  for (const char* camera : {"cam-north", "cam-south"}) {
    video::NightStreetWorld feed(video::WorldConfig{}, feed_seed++);
    std::vector<video::VideoExample> examples;
    for (const auto& frame : feed.GenerateFrames(frames)) {
      examples.push_back(
          {frame.index, frame.timestamp, detector.Detect(frame)});
    }
    ServeStream(monitor, "video", suite_factory, camera,
                std::move(examples));
  }
}

/// AV: two drive logs; camera + LIDAR outputs from the AV pipeline.
void ServeAv(serve::Monitor& monitor, std::uint64_t seed) {
  const auto suite_factory = serve::EraseSuiteFactory<av::AvExample>(
      "av", [] {
        auto built = std::make_shared<av::AvSuite>(av::BuildAvSuite());
        return runtime::SuiteBundle<av::AvExample>{
            std::shared_ptr<core::AssertionSuite<av::AvExample>>(
                built, &built->suite),
            {}};  // both AV assertions are pointwise; nothing to invalidate
      });
  std::uint64_t log_seed = seed;
  for (const char* log : {"drive-a", "drive-b"}) {
    av::AvPipelineConfig config;
    config.pool_scenes = 8;
    config.test_scenes = 2;
    config.world_seed = log_seed++;
    av::AvPipeline pipeline(config);
    ServeStream(monitor, "av", suite_factory, log,
                pipeline.MakeExamples(pipeline.pool()));
  }
}

/// ECG: two patient cohorts classified by one pretrained model.
void ServeEcg(serve::Monitor& monitor, std::uint64_t seed) {
  ecg::EcgGenerator generator(ecg::EcgConfig{}, seed);
  ecg::EcgClassifier classifier(ecg::EcgClassifierConfig{},
                                generator.config().feature_dim, seed);
  classifier.Pretrain(generator.PretrainingSet(600));

  const auto suite_factory = serve::EraseSuiteFactory<ecg::EcgExample>(
      "ecg", [] {
        auto built = std::make_shared<ecg::EcgSuite>(ecg::BuildEcgSuite());
        return runtime::SuiteBundle<ecg::EcgExample>{
            std::shared_ptr<core::AssertionSuite<ecg::EcgExample>>(
                built, &built->suite),
            [built] { built->consistency->Invalidate(); }};
      });
  for (const char* cohort : {"ward-1", "ward-2"}) {
    std::vector<ecg::EcgExample> examples;
    for (const auto& window : generator.GenerateRecords(12)) {
      examples.push_back(
          {window.record, window.timestamp, classifier.Predict(window)});
    }
    ServeStream(monitor, "ecg", suite_factory, cohort, std::move(examples));
  }
}

/// TV news: two channels' face-attribute model outputs.
void ServeNews(serve::Monitor& monitor, std::size_t frames,
               std::uint64_t seed) {
  const auto suite_factory = serve::EraseSuiteFactory<tvnews::NewsFrame>(
      "tvnews", [] {
        auto built =
            std::make_shared<tvnews::NewsSuite>(tvnews::BuildNewsSuite());
        return runtime::SuiteBundle<tvnews::NewsFrame>{
            std::shared_ptr<core::AssertionSuite<tvnews::NewsFrame>>(
                built, &built->suite),
            [built] { built->consistency->Invalidate(); }};
      });
  std::uint64_t channel_seed = seed;
  for (const char* channel : {"channel-4", "channel-7"}) {
    tvnews::NewsGenerator generator(tvnews::NewsConfig{}, channel_seed++);
    ServeStream(monitor, "tvnews", suite_factory, channel,
                generator.Generate(frames));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = common::Flags::Parse(argc, argv);
  flags.CheckAllowed(
      {"frames", "shards", "policy", "seed", "trace", "export-metrics"});
  const auto frames = static_cast<std::size_t>(flags.GetInt("frames", 240));
  const auto shards = static_cast<std::size_t>(flags.GetInt("shards", 4));
  const runtime::AdmissionPolicy policy =
      runtime::ParseAdmissionPolicy(flags.GetString("policy", "block"));
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const std::string trace_path = flags.GetString("trace", "");
  const std::string metrics_prefix = flags.GetString("export-metrics", "");

  std::cout << "=== one serve::Monitor, all four deployments (" << shards
            << " shards, " << runtime::AdmissionPolicyName(policy)
            << " admission) ===\n\n";

  serve::Monitor::Builder builder;
  builder.Shards(shards)
      .Window(48)
      .SettleLag(8)
      .QueueCapacity(512)
      .Admission(policy);
  if (!trace_path.empty()) builder.Trace(obs::TracerOptions{});
  auto monitor = Expect(builder.Build(), "Monitor::Build");

  std::unique_ptr<obs::MetricsExporter> exporter;
  if (!metrics_prefix.empty()) {
    obs::MetricsExporterOptions exporter_options;
    exporter_options.period = std::chrono::milliseconds(200);
    exporter_options.jsonl_path = metrics_prefix + ".jsonl";
    exporter_options.prometheus_path = metrics_prefix + ".prom";
    serve::Monitor* raw = monitor.get();
    exporter = std::make_unique<obs::MetricsExporter>(
        exporter_options, [raw] { return raw->Metrics(); });
    exporter->Start();
  }

  // Subscriptions: a high-severity alert feed across *all* domains (what a
  // pager would watch) plus a JSON-lines export of video events only.
  auto alerts = std::make_shared<runtime::CountingSink>();
  serve::EventFilter alert_filter;
  alert_filter.min_severity = 2.0;
  const serve::Subscription alert_subscription =
      monitor->Subscribe(alert_filter, alerts);
  std::ostringstream video_json;
  auto video_sink = std::make_shared<runtime::JsonLinesSink>(video_json);
  serve::EventFilter video_filter;
  video_filter.domain = "video";
  const serve::Subscription video_subscription =
      monitor->Subscribe(video_filter, video_sink);

  ServeVideo(*monitor, frames, seed);
  ServeAv(*monitor, seed);
  ServeEcg(*monitor, seed);
  ServeNews(*monitor, frames, seed);
  monitor->Flush();
  for (const auto& error : monitor->Errors()) {
    std::cout << "ingest error: " << error << "\n";
  }

  const runtime::MetricsSnapshot snapshot = monitor->Metrics();
  std::cout << "--- shared dashboard: " << snapshot.examples_seen
            << " examples, " << snapshot.events
            << " events across 4 domains ---\n";
  common::TextTable table(
      {"Stream", "Assertion", "Fires", "Max sev", "Mean sev"});
  for (const auto& stream : snapshot.streams) {
    for (const auto& [assertion, cell] : stream.assertions) {
      table.AddRow({stream.stream, assertion, std::to_string(cell.fires),
                    common::FormatDouble(cell.max_severity, 2),
                    common::FormatDouble(cell.MeanSeverity(), 2)});
    }
  }
  table.Print(std::cout);
  common::TextTable shard_table({"Shard", "Batches", "Examples", "Events",
                                 "Peak depth", "p99 ms", "Busy %",
                                 "Q-wait ms"});
  for (const auto& shard : snapshot.shards) {
    shard_table.AddRow(
        {std::to_string(shard.shard), std::to_string(shard.batches),
         std::to_string(shard.examples), std::to_string(shard.events),
         std::to_string(shard.queue_depth_peak),
         common::FormatDouble(shard.latency.Quantile(0.99) * 1e3, 3),
         common::FormatDouble(shard.BusyFraction() * 100.0, 1),
         common::FormatDouble(shard.MeanQueueWaitSeconds() * 1e3, 3)});
  }
  shard_table.Print(std::cout);

  if (exporter != nullptr) {
    exporter->Stop();
    std::cout << "\nmetrics exported: " << metrics_prefix << ".jsonl "
              << metrics_prefix << ".prom\n";
  }
  if (!trace_path.empty()) {
    std::ofstream trace_out(trace_path);
    common::Check(trace_out.good(), "cannot open trace output " + trace_path);
    monitor->WriteChromeTrace(trace_out);
    std::cout << "\ntrace written: " << trace_path << "\n";
  }

  std::cout << "\nalert subscription (severity >= 2.0, any domain): "
            << alerts->count() << " events, max severity "
            << common::FormatDouble(alerts->max_severity(), 2) << "\n";
  const std::string lines = video_json.str();
  std::cout << "video subscription (JSON-lines): first of "
            << std::count(lines.begin(), lines.end(), '\n')
            << " events: " << lines.substr(0, lines.find('\n') + 1);
  return 0;
}
