// Serving all four paper deployments through the sharded backpressure-aware
// assertion runtime (§2.3 at serving scale; see src/runtime/ and
// docs/ARCHITECTURE.md).
//
// Each domain gets a ShardedMonitorService<Example> instance (the runtime is
// typed by the domain's example struct); every service monitors several
// concurrent streams — two camera feeds, two AV logs, two ECG patient
// cohorts, two TV channels — through per-stream assertion suites, each
// stream pinned to one shard worker, ingested through bounded queues under
// a selectable admission policy. Events flow to pluggable sinks (counting +
// JSON-lines here) and the MetricsRegistry renders the per-stream dashboard
// plus the per-shard capacity/latency envelope the paper sketches.
//
// Build & run:  ./examples/runtime_serving [--frames N] [--shards N]
//               [--policy block|drop_oldest|shed_below_severity]
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "av/pipeline.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "ecg/ecg.hpp"
#include "runtime/admission.hpp"
#include "runtime/event_sink.hpp"
#include "runtime/sharded_service.hpp"
#include "tvnews/news.hpp"
#include "video/assertions.hpp"
#include "video/detector.hpp"
#include "video/world.hpp"

namespace {

using namespace omg;

/// Prints one domain's dashboard snapshot: per stream, per assertion.
void PrintDashboard(const std::string& domain,
                    const runtime::MetricsSnapshot& snapshot,
                    std::size_t sample_events,
                    const std::string& sample_json) {
  std::cout << "--- " << domain << ": " << snapshot.examples_seen
            << " examples, " << snapshot.events << " events ---\n";
  common::TextTable table(
      {"Stream", "Assertion", "Fires", "Max sev", "Mean sev"});
  for (const auto& stream : snapshot.streams) {
    for (const auto& [assertion, cell] : stream.assertions) {
      table.AddRow({stream.stream, assertion, std::to_string(cell.fires),
                    common::FormatDouble(cell.max_severity, 2),
                    common::FormatDouble(cell.MeanSeverity(), 2)});
    }
  }
  table.Print(std::cout);
  common::TextTable shard_table({"Shard", "Batches", "Examples", "Events",
                                 "Peak depth", "p99 ms"});
  for (const auto& shard : snapshot.shards) {
    shard_table.AddRow(
        {std::to_string(shard.shard), std::to_string(shard.batches),
         std::to_string(shard.examples), std::to_string(shard.events),
         std::to_string(shard.queue_depth_peak),
         common::FormatDouble(shard.latency.Quantile(0.99) * 1e3, 3)});
  }
  shard_table.Print(std::cout);
  if (sample_events > 0) {
    std::cout << "first of " << sample_events
              << " JSON-lines events: " << sample_json;
  }
  std::cout << "\n";
}

/// Serving parameters shared by the four domains.
struct ServeOptions {
  std::size_t shards = 4;
  runtime::AdmissionPolicy policy = runtime::AdmissionPolicy::kBlock;
};

/// Runs `streams` through a sharded service built by `make_bundle`, batched.
template <typename Example, typename BundleFactory>
void Serve(const std::string& domain,
           const std::vector<std::pair<std::string, std::vector<Example>>>&
               streams,
           BundleFactory make_bundle, const ServeOptions& options) {
  runtime::ShardedRuntimeConfig config;
  config.shards = options.shards;
  config.window = 48;
  config.settle_lag = 8;
  config.queue_capacity = 512;
  config.admission = options.policy;
  runtime::ShardedMonitorService<Example> service(config, make_bundle);
  std::ostringstream json;
  service.AddSink(std::make_shared<runtime::JsonLinesSink>(json));

  std::vector<runtime::StreamId> ids;
  for (const auto& [name, examples] : streams) {
    ids.push_back(service.RegisterStream(name));
  }
  constexpr std::size_t kBatch = 64;
  for (std::size_t s = 0; s < streams.size(); ++s) {
    const auto& examples = streams[s].second;
    for (std::size_t begin = 0; begin < examples.size(); begin += kBatch) {
      const std::size_t count = std::min(kBatch, examples.size() - begin);
      service.ObserveBatch(
          ids[s], std::vector<Example>(examples.begin() + begin,
                                       examples.begin() + begin + count));
    }
  }
  service.Flush();
  for (const auto& error : service.Errors()) {
    std::cout << "ingest error: " << error << "\n";
  }

  const std::string lines = json.str();
  const runtime::MetricsSnapshot snapshot = service.Metrics();
  PrintDashboard(domain, snapshot, snapshot.events,
                 lines.substr(0, lines.find('\n') + 1));
}

/// Video: two night-street camera feeds through one pretrained detector.
void ServeVideo(std::size_t frames, const ServeOptions& options,
                std::uint64_t seed) {
  video::NightStreetWorld world(video::WorldConfig{}, seed);
  video::SsdDetector detector(video::DetectorConfig{},
                              world.config().feature_dim, seed);
  detector.Pretrain(world.PretrainingSet(500, 700));

  std::vector<std::pair<std::string, std::vector<video::VideoExample>>>
      streams;
  for (const std::string& camera : {"cam-north", "cam-south"}) {
    video::NightStreetWorld feed(video::WorldConfig{}, seed + streams.size());
    std::vector<video::VideoExample> examples;
    for (const auto& frame : feed.GenerateFrames(frames)) {
      examples.push_back(
          {frame.index, frame.timestamp, detector.Detect(frame)});
    }
    streams.emplace_back(camera, std::move(examples));
  }
  Serve<video::VideoExample>(
      "video (night-street)", streams,
      [] {
        auto built = std::make_shared<video::VideoSuite>(
            video::BuildVideoSuite());
        return runtime::ShardedMonitorService<video::VideoExample>::SuiteBundle{
            // Aliasing share: the bundle keeps the whole VideoSuite (and its
            // consistency analyzer) alive through the suite pointer.
            std::shared_ptr<core::AssertionSuite<video::VideoExample>>(
                built, &built->suite),
            [built] { built->consistency->Invalidate(); }};
      },
      options);
}

/// AV: two drive logs; camera + LIDAR outputs from the AV pipeline.
void ServeAv(const ServeOptions& options, std::uint64_t seed) {
  std::vector<std::pair<std::string, std::vector<av::AvExample>>> streams;
  for (const std::string& log : {"drive-a", "drive-b"}) {
    av::AvPipelineConfig config;
    config.pool_scenes = 8;
    config.test_scenes = 2;
    config.world_seed = seed + streams.size();
    av::AvPipeline pipeline(config);
    streams.emplace_back(log, pipeline.MakeExamples(pipeline.pool()));
  }
  Serve<av::AvExample>(
      "av (camera vs lidar)", streams,
      [] {
        auto built = std::make_shared<av::AvSuite>(av::BuildAvSuite());
        return runtime::ShardedMonitorService<av::AvExample>::SuiteBundle{
            std::shared_ptr<core::AssertionSuite<av::AvExample>>(
                built, &built->suite),
            {}};  // both AV assertions are pointwise; nothing to invalidate
      },
      options);
}

/// ECG: two patient cohorts classified by one pretrained model.
void ServeEcg(const ServeOptions& options, std::uint64_t seed) {
  ecg::EcgGenerator generator(ecg::EcgConfig{}, seed);
  ecg::EcgClassifier classifier(ecg::EcgClassifierConfig{},
                                generator.config().feature_dim, seed);
  classifier.Pretrain(generator.PretrainingSet(600));

  std::vector<std::pair<std::string, std::vector<ecg::EcgExample>>> streams;
  for (const std::string& cohort : {"ward-1", "ward-2"}) {
    std::vector<ecg::EcgExample> examples;
    for (const auto& window : generator.GenerateRecords(12)) {
      examples.push_back(
          {window.record, window.timestamp, classifier.Predict(window)});
    }
    streams.emplace_back(cohort, std::move(examples));
  }
  Serve<ecg::EcgExample>(
      "ecg (30s consistency)", streams,
      [] {
        auto built = std::make_shared<ecg::EcgSuite>(ecg::BuildEcgSuite());
        return runtime::ShardedMonitorService<ecg::EcgExample>::SuiteBundle{
            std::shared_ptr<core::AssertionSuite<ecg::EcgExample>>(
                built, &built->suite),
            [built] { built->consistency->Invalidate(); }};
      },
      options);
}

/// TV news: two channels' face-attribute model outputs.
void ServeNews(std::size_t frames, const ServeOptions& options,
               std::uint64_t seed) {
  std::vector<std::pair<std::string, std::vector<tvnews::NewsFrame>>> streams;
  for (const std::string& channel : {"channel-4", "channel-7"}) {
    tvnews::NewsGenerator generator(tvnews::NewsConfig{},
                                    seed + streams.size());
    streams.emplace_back(channel, generator.Generate(frames));
  }
  Serve<tvnews::NewsFrame>(
      "tvnews (face attributes)", streams,
      [] {
        auto built =
            std::make_shared<tvnews::NewsSuite>(tvnews::BuildNewsSuite());
        return runtime::ShardedMonitorService<tvnews::NewsFrame>::SuiteBundle{
            std::shared_ptr<core::AssertionSuite<tvnews::NewsFrame>>(
                built, &built->suite),
            [built] { built->consistency->Invalidate(); }};
      },
      options);
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = common::Flags::Parse(argc, argv);
  flags.CheckAllowed({"frames", "shards", "policy", "seed"});
  const auto frames = static_cast<std::size_t>(flags.GetInt("frames", 240));
  ServeOptions options;
  options.shards = static_cast<std::size_t>(flags.GetInt("shards", 4));
  options.policy =
      runtime::ParseAdmissionPolicy(flags.GetString("policy", "block"));
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));

  std::cout << "=== assertion-serving runtime: all four deployments ("
            << options.shards << " shards, "
            << runtime::AdmissionPolicyName(options.policy)
            << " admission) ===\n\n";
  ServeVideo(frames, options, seed);
  ServeAv(options, seed);
  ServeEcg(options, seed);
  ServeNews(frames, options, seed);
  return 0;
}
