// Active learning with a single model assertion on the ECG task (§3, §5.4):
// five rounds of select -> label -> retrain with BAL, printing what the
// bandit does each round (fire counts, marginal reductions, fallbacks).
//
// Build & run:  ./examples/ecg_active_learning [--rounds N] [--budget B]
#include <iostream>

#include "bandit/bal.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "ecg/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace omg;
  const auto flags = common::Flags::Parse(argc, argv);
  flags.CheckAllowed({"rounds", "budget", "seed"});
  const auto rounds = static_cast<std::size_t>(flags.GetInt("rounds", 5));
  const auto budget = static_cast<std::size_t>(flags.GetInt("budget", 40));
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 7));

  ecg::EcgPipelineConfig config;
  config.pool_records = 60;
  config.test_records = 25;
  ecg::EcgPipeline pipeline(config);
  pipeline.Reset(seed);

  bandit::BalStrategy bal(bandit::BalConfig{},
                          std::make_unique<bandit::UncertaintyStrategy>());
  common::Rng rng(seed);

  std::cout << "=== ECG active learning with BAL ===\n\n"
            << "pool: " << pipeline.PoolSize() << " windows from "
            << config.pool_records << " records; assertion: 30 s "
            << "class-consistency (A->B->A oscillation)\n\n";
  std::cout << "pretrained test accuracy: "
            << common::FormatPercent(pipeline.Evaluate(), 1) << "\n\n";

  std::vector<std::size_t> labeled;
  for (std::size_t round = 0; round < rounds; ++round) {
    const core::SeverityMatrix severities = pipeline.ComputeSeverities();
    const std::vector<double> confidences = pipeline.Confidences();
    const std::size_t fired = severities.FireCounts()[0];

    bandit::RoundContext context;
    context.severities = &severities;
    context.confidences = confidences;
    context.round = round;
    context.already_labeled = labeled;
    const auto picked = bal.Select(context, budget, rng);
    labeled.insert(labeled.end(), picked.begin(), picked.end());
    pipeline.LabelAndTrain(picked);

    std::cout << "round " << (round + 1) << ": assertion fired on " << fired
              << " windows";
    if (!bal.LastMarginalReductions().empty()) {
      std::cout << ", marginal reduction "
                << common::FormatPercent(bal.LastMarginalReductions()[0], 1);
    }
    if (bal.UsedFallback()) std::cout << " [fell back to uncertainty]";
    std::cout << "; labeled " << picked.size() << " -> test accuracy "
              << common::FormatPercent(pipeline.Evaluate(), 1) << "\n";
  }
  std::cout << "\ntotal labels spent: " << labeled.size() << "\n";
  return 0;
}
