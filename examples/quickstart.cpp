// Quickstart: the OMG-C++ API in one file.
//
//   1. Define an Example type bundling your model's input and output.
//   2. Register assertions: arbitrary functions returning severity scores
//      (0 = abstain), or a consistency assertion generated from Id/Attrs/T.
//   3. Run the suite in batch over collected data, or stream examples
//      through a StreamingMonitor at runtime.
//
// This file is the runnable companion of docs/ASSERTIONS.md — the guide's
// snippets mirror the code below. For serving many streams through the
// sharded runtime, see examples/runtime_serving.cpp and
// docs/ARCHITECTURE.md.
//
// Build & run:  ./examples/quickstart
#include <iostream>

#include "core/assertion.hpp"
#include "core/consistency_adapter.hpp"
#include "core/monitor.hpp"

// A toy deployment: a classifier labels sensor readings "ok"/"alert" once
// per second; readings also carry the raw value.
struct Reading {
  double timestamp = 0.0;
  double value = 0.0;
  std::string label;  // the model's output
};

int main() {
  using namespace omg;

  core::AssertionSuite<Reading> suite;

  // (1) A custom pointwise assertion: physically impossible values.
  suite.AddPointwise("in-physical-range", [](const Reading& r) {
    return (r.value < 0.0 || r.value > 100.0) ? 1.0 : 0.0;
  });

  // (2) A custom stream assertion: values should not jump by > 50 units
  // between consecutive readings (severity = the jump size).
  suite.AddFunction("no-jumps", [](std::span<const Reading> stream) {
    std::vector<double> severity(stream.size(), 0.0);
    for (std::size_t i = 1; i < stream.size(); ++i) {
      const double jump = std::abs(stream[i].value - stream[i - 1].value);
      if (jump > 50.0) severity[i] = jump;
    }
    return severity;
  });

  // (3) A consistency assertion from the paper's Id/Attrs/T API: the
  // predicted label acts as the identifier, and a label that appears for
  // less than 3 seconds between absences is an A -> B -> A oscillation.
  core::ConsistencyConfig config;
  config.temporal_threshold = 3.0;
  auto analyzer = core::AddConsistencyAssertion<Reading>(
      suite, config, [](std::span<const Reading> stream) {
        core::ConsistencyExtraction extraction;
        for (std::size_t i = 0; i < stream.size(); ++i) {
          extraction.frames.push_back({i, stream[i].timestamp, "sensor"});
          core::ConsistencyRecord record;
          record.example_index = i;
          record.timestamp = stream[i].timestamp;
          record.group = "sensor";
          record.identifier = stream[i].label;
          extraction.records.push_back(std::move(record));
        }
        return extraction;
      });

  std::cout << "Registered assertions:";
  for (const auto& name : suite.Names()) std::cout << " " << name;
  std::cout << "\n\n";

  // A stream with three planted problems: an impossible value at t=2, a
  // jump at t=5, and a one-second "alert" blip at t=8.
  std::vector<Reading> stream;
  for (int t = 0; t < 12; ++t) {
    Reading r;
    r.timestamp = t;
    r.value = 20.0 + t;
    r.label = "ok";
    if (t == 2) r.value = 140.0;
    if (t == 5) r.value = 90.0;
    if (t == 8) r.label = "alert";
    stream.push_back(r);
  }

  // Batch validation (e.g. over historical data).
  core::SeverityMatrix matrix = suite.CheckAll(stream);
  std::cout << "Batch validation over " << matrix.num_examples()
            << " readings:\n";
  for (std::size_t e = 0; e < matrix.num_examples(); ++e) {
    for (std::size_t a = 0; a < matrix.num_assertions(); ++a) {
      if (matrix.Fired(e, a)) {
        std::cout << "  t=" << stream[e].timestamp << "  "
                  << suite.Names()[a] << " fired (severity "
                  << matrix.At(e, a) << ")\n";
      }
    }
  }

  // The consistency analyzer also proposes corrections (weak labels).
  std::cout << "\nProposed corrections:\n";
  for (const auto& correction : analyzer->Corrections(stream)) {
    std::cout << "  t=" << correction.timestamp << "  "
              << (correction.kind == core::CorrectionKind::kRemoveOutput
                      ? "remove output of identifier "
                      : "adjust ")
              << correction.identifier << "\n";
  }

  // Runtime monitoring: the same suite, streaming, with a callback. The
  // consistency analyzer memoises per window buffer, so the monitor gets
  // its Invalidate as the invalidation hook.
  std::cout << "\nStreaming monitor replay:\n";
  core::StreamingMonitor<Reading> monitor(
      suite, /*window=*/8, /*settle_lag=*/2,
      [&analyzer] { analyzer->Invalidate(); });
  monitor.OnEvent([](const core::MonitorEvent& event) {
    std::cout << "  [runtime] example " << event.example_index << ": "
              << event.assertion << " severity " << event.severity << "\n";
  });
  for (const auto& reading : stream) monitor.Observe(reading);
  std::cout << "\nMonitor saw " << monitor.stats().examples_seen
            << " examples, emitted " << monitor.stats().events_emitted
            << " events.\n";
  return 0;
}
