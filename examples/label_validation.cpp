// Validating human labels with a model assertion (§2.3 and Appendix E):
// a labeling service annotates night-street frames; an IoU tracker plays
// the identification function and the class-consistency assertion flags
// objects whose label changes across frames.
//
// Build & run:  ./examples/label_validation [--frames N]
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "labels/labels.hpp"
#include "video/world.hpp"

int main(int argc, char** argv) {
  using namespace omg;
  const auto flags = common::Flags::Parse(argc, argv);
  flags.CheckAllowed({"frames", "seed"});
  const auto n_frames =
      static_cast<std::size_t>(flags.GetInt("frames", 600));
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 21));

  video::NightStreetWorld world(video::WorldConfig{}, seed);
  const auto frames = world.GenerateFrames(n_frames);

  // Two annotator profiles: a careful one and a sloppy one.
  struct Profile {
    std::string name;
    labels::AnnotatorConfig config;
  };
  std::vector<Profile> profiles(2);
  profiles[0].name = "careful annotator";
  profiles[0].config.consistent_confusion_rate = 0.02;
  profiles[0].config.random_error_rate = 0.004;
  profiles[1].name = "sloppy annotator";
  profiles[1].config.consistent_confusion_rate = 0.08;
  profiles[1].config.random_error_rate = 0.03;

  std::cout << "=== human-label validation over " << n_frames
            << " frames ===\n\n";
  common::TextTable table(
      {"Annotator", "Labels", "Errors", "Caught", "Catch rate"});
  for (const auto& profile : profiles) {
    labels::AnnotatorSim annotator(profile.config, seed + 1);
    const auto labeled = annotator.LabelFrames(frames);
    const auto report = labels::ValidateLabels(labeled);
    table.AddRow({profile.name, std::to_string(report.total_labels),
                  std::to_string(report.errors),
                  std::to_string(report.errors_caught),
                  common::FormatPercent(report.CatchRate(), 1)});
  }
  table.Print(std::cout);
  std::cout << "\nConsistency assertions catch per-frame slips (the same\n"
            << "object labeled differently in different frames) but not\n"
            << "consistent confusions — exactly the paper's Appendix E\n"
            << "observation that 12.5% of service errors were caught.\n";
  return 0;
}
