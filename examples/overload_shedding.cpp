// Overload behavior of the sharded serving fast path: the three admission
// policies side by side, and the improvement loop surviving shedding.
//
// A producer offers traffic faster than the (deliberately slowed) assertion
// suite can score it, against a small bounded queue. Each policy handles
// the overload differently:
//
//   block               lossless: the producer is backpressured to the
//                       scoring rate; nothing is lost, ingestion is slow.
//   drop_oldest         freshest-data-wins: the queue head is dropped (and
//                       counted) to admit new work.
//   shed_below_severity importance-wins: batches with a low severity hint
//                       are shed; burst-heavy batches displace them.
//
// Under shed_below_severity a FlagCollectorSink keeps feeding the
// improvement loop's FlagStore: the high-severity evidence BAL samples
// from survives, every lost example is counted, and the counters reconcile
// exactly (offered == scored + shed + dropped).
//
// Build & run:  ./examples/overload_shedding [--batches N]
#include <chrono>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/assertion.hpp"
#include "loop/flag_collector.hpp"
#include "loop/flag_store.hpp"
#include "runtime/admission.hpp"
#include "runtime/event_sink.hpp"
#include "runtime/sharded_service.hpp"

namespace {

using namespace omg;

/// One sensor reading; `noise` makes the suite artificially expensive so a
/// single producer can outrun two shard workers on any machine.
struct Reading {
  double value = 0.0;
};

core::AssertionSuite<Reading> MakeSuite() {
  core::AssertionSuite<Reading> suite;
  suite.AddPointwise("anomalous", [](const Reading& r) {
    // Busy work standing in for a real assertion's feature extraction.
    double accumulator = r.value;
    for (int i = 0; i < 400; ++i) {
      accumulator = accumulator * 0.99 + 0.01;
    }
    return r.value > 3.0 ? r.value + (accumulator - accumulator) : 0.0;
  });
  return suite;
}

/// A batch of mostly-calm readings; every eighth batch carries an anomaly
/// burst (values > 3), which is also its admission severity hint.
std::vector<Reading> MakeBatch(common::Rng& rng, bool burst,
                               std::size_t size) {
  std::vector<Reading> batch(size);
  for (std::size_t i = 0; i < size; ++i) {
    batch[i].value = burst && i % 4 == 0 ? rng.Uniform(3.5, 6.0)
                                         : rng.Uniform(0.0, 1.0);
  }
  return batch;
}

struct PolicyOutcome {
  std::string policy;
  double seconds = 0.0;
  std::size_t scored = 0;
  std::size_t shed = 0;
  std::size_t dropped = 0;
  std::size_t peak_depth = 0;
  std::size_t events = 0;
  double p99_ms = 0.0;
};

PolicyOutcome RunPolicy(runtime::AdmissionPolicy policy, std::size_t batches,
                        std::size_t batch_size,
                        const std::shared_ptr<loop::FlagCollectorSink>&
                            collector) {
  runtime::ShardedRuntimeConfig config;
  config.shards = 2;
  config.window = 32;
  config.settle_lag = 4;
  config.queue_capacity = 4 * batch_size;  // small on purpose
  config.admission = policy;
  config.shed_floor = 3.0;  // batches without a burst hint get shed
  runtime::ShardedMonitorService<Reading> service(config, [] {
    auto suite = std::make_shared<core::AssertionSuite<Reading>>(MakeSuite());
    return runtime::ShardedMonitorService<Reading>::SuiteBundle{suite, {}};
  });
  auto counting = std::make_shared<runtime::CountingSink>();
  service.AddSink(counting);
  if (collector != nullptr) service.AddSink(collector);
  const runtime::StreamId north = service.RegisterStream("sensor-north");
  const runtime::StreamId south = service.RegisterStream("sensor-south");

  common::Rng rng(7);
  const auto begin = std::chrono::steady_clock::now();
  for (std::size_t b = 0; b < batches; ++b) {
    const bool burst = b % 8 == 0;
    const double hint = burst ? 4.0 : 0.5;
    service.ObserveBatch(north, MakeBatch(rng, burst, batch_size), hint);
    service.ObserveBatch(south, MakeBatch(rng, burst, batch_size), hint);
  }
  service.Flush();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();

  const runtime::MetricsSnapshot snapshot = service.Metrics();
  PolicyOutcome outcome;
  outcome.policy = std::string(runtime::AdmissionPolicyName(policy));
  outcome.seconds = seconds;
  outcome.scored = snapshot.examples_seen;
  outcome.shed = snapshot.TotalShedExamples();
  outcome.dropped = snapshot.TotalDroppedExamples();
  outcome.events = counting->count();
  for (const runtime::ShardMetrics& shard : snapshot.shards) {
    outcome.peak_depth = std::max(outcome.peak_depth, shard.queue_depth_peak);
  }
  outcome.p99_ms = snapshot.MergedLatency().Quantile(0.99) * 1e3;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = common::Flags::Parse(argc, argv);
  flags.CheckAllowed({"batches"});
  const auto batches = static_cast<std::size_t>(flags.GetInt("batches", 400));
  constexpr std::size_t kBatchSize = 64;
  const std::size_t offered = 2 * batches * kBatchSize;

  std::cout << "=== overload: " << offered << " examples offered through a "
            << (4 * kBatchSize) << "-example queue per shard ===\n\n";

  // The improvement loop hangs off the shed run: only events with severity
  // >= 3.5 are worth a label here.
  auto store = std::make_shared<loop::FlagStore>(
      loop::FlagStoreConfig{/*capacity=*/128, /*num_assertions=*/1});
  auto collector = std::make_shared<loop::FlagCollectorSink>(
      store, std::vector<std::string>{"anomalous"},
      loop::FlagCollectorConfig{/*min_severity=*/3.5});

  std::vector<PolicyOutcome> outcomes;
  outcomes.push_back(RunPolicy(runtime::AdmissionPolicy::kBlock, batches,
                               kBatchSize, nullptr));
  outcomes.push_back(RunPolicy(runtime::AdmissionPolicy::kDropOldest, batches,
                               kBatchSize, nullptr));
  outcomes.push_back(RunPolicy(runtime::AdmissionPolicy::kShedBelowSeverity,
                               batches, kBatchSize, collector));

  common::TextTable table({"Policy", "Seconds", "Scored", "Shed", "Dropped",
                           "Events", "Peak depth", "p99 ms"});
  for (const PolicyOutcome& outcome : outcomes) {
    table.AddRow({outcome.policy, common::FormatDouble(outcome.seconds, 3),
                  std::to_string(outcome.scored), std::to_string(outcome.shed),
                  std::to_string(outcome.dropped),
                  std::to_string(outcome.events),
                  std::to_string(outcome.peak_depth),
                  common::FormatDouble(outcome.p99_ms, 3)});
  }
  table.Print(std::cout);

  const PolicyOutcome& shed = outcomes.back();
  std::cout << "\nAccounting under shed_below_severity: " << shed.scored
            << " scored + " << shed.shed << " shed + " << shed.dropped
            << " dropped = " << (shed.scored + shed.shed + shed.dropped)
            << " of " << offered << " offered\n";

  std::cout << "\nThe improvement loop kept collecting through the overload:\n"
            << "  collector consumed " << collector->consumed()
            << " events, recorded " << collector->recorded()
            << ", shed (below min_severity 3.5) "
            << collector->shed_low_severity() << "\n"
            << "  flag store holds " << store->size() << " candidates (cap "
            << store->config().capacity << "), admitted "
            << store->total_admitted() << ", evicted " << store->evictions()
            << "\n";
  const loop::FlagStore::Snapshot snapshot = store->TakeSnapshot();
  double min_kept = snapshot.keys.empty() ? 0.0 : 1e9;
  for (std::size_t row = 0; row < snapshot.keys.size(); ++row) {
    min_kept = std::min(min_kept, snapshot.severities.At(row, 0));
  }
  std::cout << "  lowest retained severity: "
            << common::FormatDouble(min_kept, 2)
            << " — the high-severity evidence BAL samples from survived\n";
  return 0;
}
