// Load generator for net::IngestServer — the client half of the wire.
//
// Drives a running server (examples/scenario_harness --serve, or any
// embedding of net::IngestServer) with N concurrent connections offering
// synthetic examples as DATA frames at a paced rate, then flushes, pulls
// the server's STATS counters, and checks the wire accounting identity:
//
//   offered == scored + shed + dropped + errored
//            + quota_rejected + decode_errors
//
// Flags:
//   --connect uds:PATH | tcp:HOST:PORT   where the server listens
//   --streams SPEC[,SPEC...]             SPEC = tenant@stream:domain[:hint]
//   --tokens  tenant:token[,...]         HELLO tokens per tenant
//   --connections N                      concurrent connections (default 1)
//   --rate EPS                           examples/sec per connection
//                                        (default 0 = unpaced)
//   --batch N                            examples per DATA frame
//   --examples N                         examples per connection
//   --no-verify                          skip the FLUSH+STATS reconcile
//
// Connection i drives streams[i % len(streams)], so two specs and two
// connections exercise two tenants concurrently:
//
//   ingest_load --connect uds:/tmp/omg_mixed_tenants.sock
//     --streams "alpha@cam-alpha:video,beta@ward-beta:ecg"
//     --tokens "alpha:alpha-secret,beta:beta-secret"
//     --connections 2 --examples 4096 --batch 32
//
// Exits nonzero when the identity does not reconcile (or nothing could
// connect) so CI can gate on it.
#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "net/client.hpp"
#include "serve/domains.hpp"

namespace {

using namespace omg;

std::vector<std::string> SplitList(const std::string& text, char sep) {
  std::vector<std::string> items;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t end = std::min(text.find(sep, begin), text.size());
    if (end > begin) items.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return items;
}

/// "tenant@stream:domain[:hint]" -> LoadStreamSpec (token filled later).
net::LoadStreamSpec ParseStreamSpec(const std::string& text) {
  net::LoadStreamSpec spec;
  const std::size_t at = text.find('@');
  common::Check(at != std::string::npos && at > 0,
                "--streams spec '" + text +
                    "' needs tenant@stream:domain[:hint]");
  spec.tenant = text.substr(0, at);
  const std::vector<std::string> parts =
      SplitList(text.substr(at + 1), ':');
  common::Check(parts.size() == 2 || parts.size() == 3,
                "--streams spec '" + text +
                    "' needs tenant@stream:domain[:hint]");
  spec.stream = parts[0];
  spec.domain = parts[1];
  if (parts.size() == 3) {
    try {
      spec.hint = std::stod(parts[2]);
    } catch (const std::exception&) {
      throw common::CheckError("--streams spec '" + text +
                               "' has a non-numeric hint");
    }
  }
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = common::Flags::Parse(argc, argv);
  try {
    flags.CheckAllowed({"connect", "streams", "tokens", "connections",
                        "rate", "batch", "examples", "no-verify"});

    net::LoadClientOptions options;
    const std::string connect = flags.GetString("connect", "");
    common::Check(!connect.empty(),
                  "--connect uds:PATH or tcp:HOST:PORT is required");
    if (connect.rfind("uds:", 0) == 0) {
      options.uds_path = connect.substr(4);
    } else if (connect.rfind("tcp:", 0) == 0) {
      const std::string rest = connect.substr(4);
      const std::size_t colon = rest.rfind(':');
      common::Check(colon != std::string::npos && colon > 0,
                    "--connect tcp target needs HOST:PORT");
      options.tcp_host = rest.substr(0, colon);
      options.tcp_port =
          static_cast<std::uint16_t>(std::stoi(rest.substr(colon + 1)));
    } else {
      throw common::CheckError("--connect must start with uds: or tcp:");
    }

    std::map<std::string, std::string> tokens;
    for (const std::string& pair :
         SplitList(flags.GetString("tokens", ""), ',')) {
      const std::size_t colon = pair.find(':');
      common::Check(colon != std::string::npos && colon > 0,
                    "--tokens entry '" + pair + "' needs tenant:token");
      tokens[pair.substr(0, colon)] = pair.substr(colon + 1);
    }
    for (const std::string& text :
         SplitList(flags.GetString("streams", ""), ',')) {
      net::LoadStreamSpec spec = ParseStreamSpec(text);
      const auto it = tokens.find(spec.tenant);
      if (it != tokens.end()) spec.token = it->second;
      options.streams.push_back(std::move(spec));
    }
    common::Check(!options.streams.empty(),
                  "--streams needs at least one tenant@stream:domain spec");

    options.connections =
        static_cast<std::size_t>(flags.GetInt("connections", 1));
    options.rate_eps = flags.GetDouble("rate", 0.0);
    options.batch = static_cast<std::size_t>(flags.GetInt("batch", 32));
    options.examples_per_connection =
        static_cast<std::size_t>(flags.GetInt("examples", 1024));
    options.verify = !flags.GetBool("no-verify", false);

    const serve::DomainRegistry domains =
        serve::MakeDefaultDomainRegistry();
    const serve::Result<net::LoadReport> result =
        net::RunLoadClient(options, domains);
    if (!result.ok()) {
      std::cerr << "load client failed: " << result.error().message << "\n";
      return 1;
    }
    const net::LoadReport& report = result.value();

    const double eps =
        report.elapsed_seconds > 0.0
            ? static_cast<double>(report.offered) / report.elapsed_seconds
            : 0.0;
    std::cout << "offered " << report.offered << " examples over "
              << options.connections << " connections in "
              << common::FormatDouble(report.elapsed_seconds, 2) << "s ("
              << common::FormatDouble(eps, 0) << " ex/s, "
              << report.wire_bytes << " wire bytes";
    if (report.connection_errors > 0) {
      std::cout << ", " << report.connection_errors << " connection errors";
    }
    std::cout << ")\n";
    if (!options.verify) return 0;

    common::TextTable table({"Counter", "Examples"});
    table.AddRow({"offered (server)", std::to_string(report.server_offered)});
    table.AddRow({"admitted", std::to_string(report.server_admitted)});
    table.AddRow({"scored", std::to_string(report.scored)});
    table.AddRow({"shed", std::to_string(report.shed)});
    table.AddRow({"dropped", std::to_string(report.dropped)});
    table.AddRow({"errored", std::to_string(report.errored)});
    table.AddRow(
        {"quota_rejected", std::to_string(report.server_quota_rejected)});
    table.AddRow(
        {"decode_errors", std::to_string(report.server_decode_errors)});
    table.Print(std::cout);
    std::cout << "wire accounting: offered " << report.offered
              << (report.reconciled ? " reconciled exactly\n"
                                    : " DID NOT reconcile\n");
    return report.reconciled ? 0 : 1;
  } catch (const common::CheckError& error) {
    std::cerr << "ingest_load: " << error.what() << "\n";
    return 1;
  }
}
